//! Per-configuration seat capping.

use crate::candidate::{Candidate, Committee};

/// Selects up to `k` members in stake order, but allows each configuration
/// at most `⌈cap_share · k⌉` seats. A simple, always-satisfiable guard
/// against monoculture: stake still matters, but no single stack can fill
/// the committee.
///
/// The cap is on *seats* rather than power share: a power-share cap is
/// unsatisfiable during committee bootstrap (a singleton committee always
/// gives its configuration 100% of the power), whereas a seat cap is
/// well-defined at every step and bounds the power share whenever member
/// stakes are comparable.
///
/// With `cap_share ≥ 1.0` this degenerates to
/// [`crate::baseline::top_stake`].
///
/// # Panics
///
/// Panics if `cap_share` is not in `(0, 1]`.
#[must_use]
pub fn proportional_cap(candidates: &[Candidate], k: usize, cap_share: f64) -> Committee {
    assert!(
        cap_share > 0.0 && cap_share <= 1.0,
        "cap share must be in (0, 1]"
    );
    let max_seats = ((cap_share * k as f64).ceil() as usize).max(1);
    let mut sorted: Vec<Candidate> = candidates
        .iter()
        .copied()
        .filter(|c| !c.power().is_zero())
        .collect();
    sorted.sort_by(|a, b| {
        b.power()
            .cmp(&a.power())
            .then_with(|| a.replica().cmp(&b.replica()))
    });

    // Dense seat counters via a sorted slot map — no hashing in the loop.
    let mut configs: Vec<usize> = sorted.iter().map(Candidate::config).collect();
    configs.sort_unstable();
    configs.dedup();
    let mut seats = vec![0usize; configs.len()];
    let mut members: Vec<Candidate> = Vec::with_capacity(k.min(sorted.len()));
    for cand in sorted {
        if members.len() >= k {
            break;
        }
        let slot = configs
            .binary_search(&cand.config())
            .expect("every candidate config is in the slot map");
        if seats[slot] < max_seats {
            seats[slot] += 1;
            members.push(cand);
        }
    }
    Committee::new(members)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baseline::top_stake;
    use fi_types::{ReplicaId, VotingPower};

    fn monoculture_heavy() -> Vec<Candidate> {
        // 6 whales all on config 0, 6 small fish across configs 1-3.
        (0..12u64)
            .map(|i| {
                let (power, config) = if i < 6 {
                    (100, 0)
                } else {
                    (20, 1 + (i as usize % 3))
                };
                Candidate::new(ReplicaId::new(i), VotingPower::new(power), config, true)
            })
            .collect()
    }

    #[test]
    fn cap_limits_dominant_config_seats() {
        let committee = proportional_cap(&monoculture_heavy(), 8, 0.5);
        assert_eq!(committee.len(), 8);
        let config0_seats = committee
            .members()
            .iter()
            .filter(|m| m.config() == 0)
            .count();
        assert_eq!(config0_seats, 4, "cap 0.5 of 8 = 4 seats");
    }

    #[test]
    fn cap_one_equals_top_stake() {
        let candidates = monoculture_heavy();
        let capped = proportional_cap(&candidates, 6, 1.0);
        let stake = top_stake(&candidates, 6);
        assert_eq!(capped.total_power(), stake.total_power());
    }

    #[test]
    fn tight_cap_increases_entropy() {
        let candidates = monoculture_heavy();
        let loose = proportional_cap(&candidates, 8, 1.0);
        let tight = proportional_cap(&candidates, 8, 0.4);
        assert!(tight.entropy_bits() > loose.entropy_bits());
        assert!(tight.worst_config_share() < loose.worst_config_share());
    }

    #[test]
    fn cap_always_allows_at_least_one_seat() {
        // A microscopic cap still admits one member per configuration.
        let committee = proportional_cap(&monoculture_heavy(), 4, 0.01);
        assert_eq!(committee.len(), 4);
        let mut configs: Vec<usize> = committee.members().iter().map(|m| m.config()).collect();
        configs.sort_unstable();
        configs.dedup();
        assert_eq!(configs.len(), 4, "one seat per configuration");
    }

    #[test]
    fn stake_order_respected_within_cap() {
        let committee = proportional_cap(&monoculture_heavy(), 4, 0.5);
        // Two config-0 whales first (cap 2), then the biggest fish.
        assert_eq!(committee.members()[0].replica(), ReplicaId::new(0));
        assert_eq!(committee.members()[1].replica(), ReplicaId::new(1));
        assert!(committee.members()[2].config() != 0);
    }

    #[test]
    fn zero_power_candidates_skipped() {
        let mut candidates = monoculture_heavy();
        candidates.push(Candidate::new(
            ReplicaId::new(50),
            VotingPower::ZERO,
            5,
            true,
        ));
        let committee = proportional_cap(&candidates, 12, 1.0);
        assert!(committee
            .members()
            .iter()
            .all(|m| m.replica() != ReplicaId::new(50)));
    }

    #[test]
    #[should_panic(expected = "cap share")]
    fn rejects_zero_cap() {
        let _ = proportional_cap(&monoculture_heavy(), 4, 0.0);
    }
}
