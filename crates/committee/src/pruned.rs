//! Bucket-pruned greedy selection: the serving-grade cold path.
//!
//! [`greedy_diverse`](crate::greedy_diverse) evaluates every remaining
//! candidate in every round — O(n·k) marginal-gain peeks, which at fleet
//! scale (n ≈ 10⁵, k ≈ 64) is the slowest serving operation left. But the
//! marginal gain of adding a candidate depends only on its *(configuration
//! bucket, power)*, and within one bucket the gain is **strictly unimodal
//! in power**: writing `W` for the committee's total power, `S` for its
//! `Σ w·log2 w` term, and `b` for the bucket's current committee power, the
//! entropy after adding `p` to that bucket is
//!
//! ```text
//! f(p) = log2(W + p) − (S′ + (b + p)·log2(b + p)) / (W + p),
//! S′ = S − b·log2 b
//! ```
//!
//! whose derivative has the sign of `S′ − (W − b)·log2(b + p)` — strictly
//! decreasing in `p` whenever `W > b`, so `f` rises to a single analytic
//! peak at `b + p* = 2^{S′ / (W − b)}` and falls thereafter. A
//! [`PrunedRoster`] therefore keeps each bucket's candidates sorted by
//! power, and each selection round binary-searches every bucket for the two
//! entries bracketing `p*`, then expands outward only while the *exactly
//! evaluated* gain stays within a guard band of the bucket's best. The peak
//! position is only a **locator** — every candidate that survives the band
//! is evaluated with the same [`EntropyAccumulator::peek_add`] arithmetic
//! and folded with the same tie predicate as [`greedy_diverse`], so the
//! selected sequence is byte-identical; the band (`1e-9`, three orders of
//! magnitude wider than the fold's `1e-12` tie window) guarantees every
//! potential tie contender is evaluated. Cost per round drops from O(n) to
//! O(C·log L) for C buckets of ≤ L candidates — subquadratic end to end.
//!
//! The degenerate bucket `W == b` (the committee is empty, or holds power
//! only in this bucket) has `f ≡ +0.0` exactly for *every* candidate — the
//! accumulator pins single-support entropy to `+0.0` — so the fold reduces
//! to the max-preferred unselected entry: the tail of the power-sorted
//! list.
//!
//! The roster is also the warm-start substrate: it is maintained
//! differentially (entry insert/remove in O(log L + L), bucket slot splices
//! in O(C)), so an epoch snapshot can carry it forward through churn
//! patches instead of re-sorting the fleet per selection. See
//! [`crate::warm`] for the replay layer on top.

use std::cmp::Reverse;

use fi_entropy::EntropyAccumulator;
use fi_types::{ReplicaId, VotingPower};
use serde::{Deserialize, Serialize};

use crate::candidate::{Candidate, Committee};
use crate::greedy::preferred;

/// The fold's tie window — identical to [`greedy_diverse`]'s literal, so
/// the pruned engine resolves entropy ties with byte-identical semantics.
///
/// [`greedy_diverse`]: crate::greedy_diverse
pub(crate) const TIE_EPS: f64 = 1e-12;

/// The pruning guard band: entries whose exactly-evaluated gain falls this
/// far below their bucket's best are provably irrelevant to the fold (the
/// band is 10³× the tie window), so the outward walk stops there.
const BAND: f64 = 1e-9;

/// `w · log2 w` with the `0 · log 0 := 0` convention — local copy for the
/// peak *locator* only; every decision uses the accumulator's exact peeks.
#[inline]
fn xlog2(w: u64) -> f64 {
    if w == 0 {
        0.0
    } else {
        let x = w as f64;
        x * x.log2()
    }
}

/// One candidate as stored in a bucket list. Configuration and list
/// position are implied by the owning bucket, so bucket-slot splices never
/// rewrite entries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
struct PrunedEntry {
    power: u64,
    replica: ReplicaId,
    attested: bool,
}

/// Ascending sort key: power, then *descending* replica id — so the list
/// tail is always the max-preferred entry (highest power, lowest replica),
/// mirroring [`preferred`].
#[inline]
fn entry_key(e: &PrunedEntry) -> (u64, Reverse<ReplicaId>) {
    (e.power, Reverse(e.replica))
}

/// A candidate roster indexed for pruned greedy selection: per-configuration
/// candidate lists sorted ascending by (power, descending replica id).
///
/// Zero-power candidates are excluded (they can never be selected — the
/// greedy policies skip them), and a configuration whose candidates all
/// left keeps its (empty) list so *dense* rosters — where configuration
/// values are bucket positions `0..num_configs`, the epoch-snapshot layout
/// — stay positionally aligned until [`splice_dense_slots`] renumbers them.
///
/// [`splice_dense_slots`]: Self::splice_dense_slots
///
/// # Example
///
/// ```
/// use fi_committee::{greedy_diverse, Candidate, PrunedRoster};
/// use fi_types::{ReplicaId, VotingPower};
///
/// let candidates: Vec<Candidate> = (0..40u64)
///     .map(|i| Candidate::new(
///         ReplicaId::new(i),
///         VotingPower::new(1 + (i * 13) % 97),
///         (i % 5) as usize,
///         true,
///     ))
///     .collect();
/// let roster = PrunedRoster::build(&candidates);
/// // Byte-identical member sequence, subquadratic cost.
/// assert_eq!(
///     roster.select(8).members(),
///     greedy_diverse(&candidates, 8).members()
/// );
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PrunedRoster {
    /// Sorted distinct configuration values, parallel to `lists`.
    configs: Vec<usize>,
    /// Per-configuration candidate lists, each sorted by [`entry_key`].
    lists: Vec<Vec<PrunedEntry>>,
    /// Total entries across all lists.
    len: usize,
}

impl PrunedRoster {
    /// Indexes `candidates` (arbitrary, possibly sparse configuration
    /// values; zero-power candidates dropped). O(n log n).
    #[must_use]
    pub fn build(candidates: &[Candidate]) -> Self {
        let mut configs: Vec<usize> = candidates
            .iter()
            .filter(|c| !c.power().is_zero())
            .map(Candidate::config)
            .collect();
        configs.sort_unstable();
        configs.dedup();
        let mut roster = PrunedRoster {
            lists: vec![Vec::new(); configs.len()],
            configs,
            len: 0,
        };
        roster.fill(candidates, |roster, c| {
            roster
                .configs
                .binary_search(&c.config())
                .expect("every positive-power config is in the slot map")
        });
        roster
    }

    /// Indexes `candidates` whose configuration values are *dense* slot
    /// positions `0..slots` (the epoch-snapshot layout: one slot per sorted
    /// measurement bucket plus the trailing unattested pseudo-slot). Slots
    /// without positive-power candidates keep empty lists, so list position
    /// equals configuration value — the precondition for
    /// [`splice_dense_slots`](Self::splice_dense_slots).
    ///
    /// # Panics
    ///
    /// Panics if any positive-power candidate's configuration is ≥ `slots`.
    #[must_use]
    pub fn from_dense(slots: usize, candidates: &[Candidate]) -> Self {
        let mut roster = PrunedRoster {
            configs: (0..slots).collect(),
            lists: vec![Vec::new(); slots],
            len: 0,
        };
        roster.fill(candidates, |_, c| c.config());
        roster
    }

    /// Shared bulk-build tail: bucket every positive-power candidate, then
    /// sort each list once.
    fn fill(&mut self, candidates: &[Candidate], slot_of: impl Fn(&Self, &Candidate) -> usize) {
        for c in candidates {
            if c.power().is_zero() {
                continue;
            }
            let li = slot_of(self, c);
            self.lists[li].push(PrunedEntry {
                power: c.power().as_units(),
                replica: c.replica(),
                attested: c.attested(),
            });
            self.len += 1;
        }
        for list in &mut self.lists {
            list.sort_unstable_by_key(entry_key);
        }
    }

    /// Number of indexed (positive-power) candidates.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no candidate is indexed.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of configuration slots (empty ones included).
    #[must_use]
    pub fn num_configs(&self) -> usize {
        self.configs.len()
    }

    /// Inserts one candidate in O(log C + L): locates (or creates) its
    /// configuration list and splices the entry into sort position.
    /// Zero-power candidates are ignored, mirroring [`build`](Self::build).
    pub fn insert(&mut self, c: &Candidate) {
        if c.power().is_zero() {
            return;
        }
        let li = match self.configs.binary_search(&c.config()) {
            Ok(li) => li,
            Err(pos) => {
                self.configs.insert(pos, c.config());
                self.lists.insert(pos, Vec::new());
                pos
            }
        };
        let e = PrunedEntry {
            power: c.power().as_units(),
            replica: c.replica(),
            attested: c.attested(),
        };
        let list = &mut self.lists[li];
        let pos = list.partition_point(|x| entry_key(x) < entry_key(&e));
        list.insert(pos, e);
        self.len += 1;
    }

    /// Removes one candidate by its exact `(config, power, replica)` row in
    /// O(log C + log L + L); returns whether it was present. The
    /// configuration list is kept even when emptied (dense rosters need the
    /// positional alignment; selection skips empty lists).
    pub fn remove(&mut self, c: &Candidate) -> bool {
        if c.power().is_zero() {
            return false;
        }
        let Ok(li) = self.configs.binary_search(&c.config()) else {
            return false;
        };
        let key = (c.power().as_units(), Reverse(c.replica()));
        let list = &mut self.lists[li];
        match list.binary_search_by(|x| entry_key(x).cmp(&key)) {
            Ok(pos) => {
                list.remove(pos);
                self.len -= 1;
                true
            }
            Err(_) => false,
        }
    }

    /// Removes a batch of candidates by their exact `(config, power,
    /// replica)` rows in **one merge pass per touched list** — O(R log R +
    /// Σ touched-list lengths) — instead of the O(R · L) worst case of R
    /// [`remove`](Self::remove) calls, each of which memmoves its list's
    /// tail. The difference is decisive when configurations are few and
    /// lists are long (a large fleet attests a handful of measurements):
    /// the differential epoch seal retires every churned device through
    /// this path. Rows that are not present are ignored, mirroring a
    /// `remove` that returns `false`.
    pub fn remove_batch(&mut self, rows: &[Candidate]) {
        let mut keyed: Vec<(usize, (u64, Reverse<ReplicaId>))> = rows
            .iter()
            .filter(|c| !c.power().is_zero())
            .filter_map(|c| {
                self.configs
                    .binary_search(&c.config())
                    .ok()
                    .map(|li| (li, (c.power().as_units(), Reverse(c.replica()))))
            })
            .collect();
        keyed.sort_unstable();
        let mut k = 0;
        while k < keyed.len() {
            let li = keyed[k].0;
            let end = keyed[k..]
                .iter()
                .position(|&(l, _)| l != li)
                .map_or(keyed.len(), |p| k + p);
            let keys = &keyed[k..end];
            let list = &mut self.lists[li];
            let before = list.len();
            // Both sides are sorted ascending by the entry key, so one
            // forward walk pairs every to-remove key with its entry.
            let mut ki = 0;
            list.retain(|e| {
                let key = entry_key(e);
                while ki < keys.len() && keys[ki].1 < key {
                    ki += 1;
                }
                if ki < keys.len() && keys[ki].1 == key {
                    ki += 1;
                    false
                } else {
                    true
                }
            });
            self.len -= before - list.len();
            k = end;
        }
    }

    /// Inserts a batch of candidates in **one merge pass per touched
    /// list** — O(A log A + Σ touched-list lengths) — instead of the
    /// O(A · L) worst case of A [`insert`](Self::insert) calls. Missing
    /// configuration lists are created (sparse rosters); zero-power
    /// candidates are ignored, mirroring [`build`](Self::build).
    pub fn insert_batch(&mut self, rows: &[Candidate]) {
        // Create any missing configuration lists first, so list indices
        // are stable while grouping.
        let mut new_configs: Vec<usize> = rows
            .iter()
            .filter(|c| !c.power().is_zero())
            .map(Candidate::config)
            .filter(|config| self.configs.binary_search(config).is_err())
            .collect();
        new_configs.sort_unstable();
        new_configs.dedup();
        for &config in &new_configs {
            let pos = self
                .configs
                .binary_search(&config)
                .expect_err("deduplicated missing config");
            self.configs.insert(pos, config);
            self.lists.insert(pos, Vec::new());
        }
        let mut keyed: Vec<(usize, PrunedEntry)> = rows
            .iter()
            .filter(|c| !c.power().is_zero())
            .map(|c| {
                let li = self
                    .configs
                    .binary_search(&c.config())
                    .expect("every config list exists now");
                (
                    li,
                    PrunedEntry {
                        power: c.power().as_units(),
                        replica: c.replica(),
                        attested: c.attested(),
                    },
                )
            })
            .collect();
        keyed.sort_unstable_by_key(|&(li, ref e)| (li, entry_key(e)));
        self.len += keyed.len();
        let mut k = 0;
        while k < keyed.len() {
            let li = keyed[k].0;
            let end = keyed[k..]
                .iter()
                .position(|&(l, _)| l != li)
                .map_or(keyed.len(), |p| k + p);
            let additions = &keyed[k..end];
            let list = &mut self.lists[li];
            let mut merged = Vec::with_capacity(list.len() + additions.len());
            let (mut i, mut j) = (0, 0);
            while i < list.len() || j < additions.len() {
                let take_old = j >= additions.len()
                    || (i < list.len() && entry_key(&list[i]) <= entry_key(&additions[j].1));
                if take_old {
                    merged.push(list[i]);
                    i += 1;
                } else {
                    merged.push(additions[j].1);
                    j += 1;
                }
            }
            *list = merged;
            k = end;
        }
    }

    /// Splices configuration *slots* of a dense roster (one whose
    /// configuration values are list positions, as built by
    /// [`from_dense`](Self::from_dense)): drops the lists at `removals`
    /// (ascending old positions — they must already be empty), inserts
    /// empty lists at `insertions` (ascending final positions), then
    /// renumbers configurations to `0..num_configs`. O(C). This mirrors the
    /// epoch snapshot's accumulator splice on bucket birth/death.
    ///
    /// # Panics
    ///
    /// Panics if a removed slot still holds entries (its members were not
    /// removed first) or an index is out of range.
    pub fn splice_dense_slots(&mut self, removals: &[usize], insertions: &[usize]) {
        debug_assert!(
            self.configs.iter().enumerate().all(|(i, &c)| i == c),
            "slot splicing requires a dense roster"
        );
        for &at in removals.iter().rev() {
            assert!(
                self.lists[at].is_empty(),
                "removing config slot {at} that still has entries"
            );
            self.lists.remove(at);
        }
        for &at in insertions {
            self.lists.insert(at, Vec::new());
        }
        self.configs = (0..self.lists.len()).collect();
    }

    /// Greedy entropy-maximising selection of `k` members — the
    /// byte-identical member sequence of
    /// [`greedy_diverse`](crate::greedy_diverse) over the indexed
    /// candidates, in O(k·C·log L) instead of O(n·k).
    #[must_use]
    pub fn select(&self, k: usize) -> Committee {
        let mut run = SelectionRun::new(self);
        run.run_to(k);
        run.into_committee()
    }
}

/// The churned candidate rows a warm-start replay must test each verified
/// round against, grouped by configuration and sorted by [`entry_key`] —
/// built once per [`crate::warm::warm_greedy`] call so each round's
/// displacement check walks only each bucket's analytic-peak band instead
/// of peeking every churned row.
pub(crate) struct ChallengerSet {
    /// (configuration value, entries sorted by [`entry_key`]).
    groups: Vec<(usize, Vec<PrunedEntry>)>,
}

impl ChallengerSet {
    pub(crate) fn new(rows: impl IntoIterator<Item = Candidate>) -> Self {
        let mut entries: Vec<(usize, PrunedEntry)> = rows
            .into_iter()
            .filter(|c| !c.power().is_zero())
            .map(|c| {
                (
                    c.config(),
                    PrunedEntry {
                        power: c.power().as_units(),
                        replica: c.replica(),
                        attested: c.attested(),
                    },
                )
            })
            .collect();
        entries.sort_unstable_by_key(|(config, e)| (*config, entry_key(e)));
        let mut groups: Vec<(usize, Vec<PrunedEntry>)> = Vec::new();
        for (config, e) in entries {
            match groups.last_mut() {
                Some((c, list)) if *c == config => list.push(e),
                _ => groups.push((config, vec![e])),
            }
        }
        ChallengerSet { groups }
    }
}

/// In-flight selection state over a [`PrunedRoster`]: the committee
/// accumulator (slots parallel to the roster's lists), the members picked
/// so far, and the selected-replica skip set. Shared by the cold engine and
/// the warm-start replay in [`crate::warm`].
pub(crate) struct SelectionRun<'a> {
    roster: &'a PrunedRoster,
    acc: EntropyAccumulator,
    members: Vec<Candidate>,
    /// Sorted; binary-searched by the band walks to skip picked entries.
    selected: Vec<ReplicaId>,
}

impl<'a> SelectionRun<'a> {
    pub(crate) fn new(roster: &'a PrunedRoster) -> Self {
        SelectionRun {
            roster,
            acc: EntropyAccumulator::new(roster.lists.len()),
            members: Vec::new(),
            selected: Vec::new(),
        }
    }

    pub(crate) fn len(&self) -> usize {
        self.members.len()
    }

    pub(crate) fn is_selected(&self, replica: ReplicaId) -> bool {
        self.selected.binary_search(&replica).is_ok()
    }

    /// The marginal entropy of adding `power` at configuration `config` —
    /// the exact arithmetic every selection decision is made with.
    ///
    /// # Panics
    ///
    /// Panics if `config` has no roster slot (only possible for a
    /// zero-power candidate's configuration; callers filter those).
    pub(crate) fn peek(&self, config: usize, power: u64) -> f64 {
        let li = self
            .roster
            .configs
            .binary_search(&config)
            .expect("peeked config has a roster slot");
        self.acc.peek_add(li, power)
    }

    /// Commits `c` to the committee: accumulator add + skip-set insert.
    pub(crate) fn accept(&mut self, c: Candidate) {
        let li = self
            .roster
            .configs
            .binary_search(&c.config())
            .expect("accepted member's config has a roster slot");
        self.acc.add(li, c.power().as_units());
        let pos = self
            .selected
            .binary_search(&c.replica())
            .expect_err("a replica is selected at most once");
        self.selected.insert(pos, c.replica());
        self.members.push(c);
    }

    /// Runs full greedy rounds until `k` members are picked or the roster
    /// is exhausted.
    pub(crate) fn run_to(&mut self, k: usize) {
        while self.members.len() < k && self.round() {}
    }

    pub(crate) fn into_committee(self) -> Committee {
        Committee::new(self.members)
    }

    /// The most recently committed member, if any.
    pub(crate) fn last_member(&self) -> Option<&Candidate> {
        self.members.last()
    }

    /// Exact displacement test for one warm-replay round: would any
    /// unselected challenger row beat `incumbent` (whose marginal gain is
    /// `incumbent_gain`) under the [`greedy_diverse`] fold predicate?
    ///
    /// Each challenger bucket is walked outward from its analytic peak,
    /// exactly as [`scan_bucket`](Self::scan_bucket) does; an entry pruned
    /// by the band (`h < ceiling − BAND`) cannot displace, because a
    /// displacing entry needs `h ≥ incumbent_gain − TIE_EPS`, and if the
    /// band ceiling exceeded `incumbent_gain − TIE_EPS + BAND` then the
    /// ceiling entry itself already displaced strictly when it was
    /// evaluated. So the test is byte-equivalent to peeking every churned
    /// row, at O(log L + band) per bucket.
    ///
    /// [`greedy_diverse`]: crate::greedy_diverse
    pub(crate) fn any_displaces(
        &self,
        challengers: &ChallengerSet,
        incumbent: &Candidate,
        incumbent_gain: f64,
    ) -> bool {
        let displaces = |e: &PrunedEntry, li: usize, h: f64| {
            let cand = Candidate::new(
                e.replica,
                VotingPower::new(e.power),
                self.roster.configs[li],
                e.attested,
            );
            h > incumbent_gain + TIE_EPS
                || ((h - incumbent_gain).abs() <= TIE_EPS && preferred(&cand, incumbent))
        };
        for (config, list) in &challengers.groups {
            let li = self
                .roster
                .configs
                .binary_search(config)
                .expect("challenger config has a roster slot");
            let b = self.acc.weight(li);
            let w = self.acc.total_weight();
            if w == b {
                // Degenerate bucket: every entry lands on exactly +0.0, so
                // only the max-preferred unselected entry can matter.
                if let Some(e) = list.iter().rev().find(|e| !self.is_selected(e.replica)) {
                    let h = self.acc.peek_add(li, e.power);
                    if displaces(e, li, h) {
                        return true;
                    }
                }
                continue;
            }
            let s_prime = self.acc.weighted_log_sum() - xlog2(b);
            let target = (s_prime / ((w - b) as f64)).exp2() - b as f64;
            let idx = list.partition_point(|e| (e.power as f64) < target);
            let mut ceiling = f64::NEG_INFINITY;
            for e in list[..idx].iter().rev() {
                if self.is_selected(e.replica) {
                    continue;
                }
                let h = self.acc.peek_add(li, e.power);
                if h < ceiling - BAND {
                    break;
                }
                if h > ceiling {
                    ceiling = h;
                }
                if displaces(e, li, h) {
                    return true;
                }
            }
            for e in &list[idx..] {
                if self.is_selected(e.replica) {
                    continue;
                }
                let h = self.acc.peek_add(li, e.power);
                if h < ceiling - BAND {
                    break;
                }
                if h > ceiling {
                    ceiling = h;
                }
                if displaces(e, li, h) {
                    return true;
                }
            }
        }
        false
    }

    /// One greedy round: bracket every bucket's analytic peak, evaluate the
    /// surviving band exactly, fold with [`greedy_diverse`]'s tie
    /// predicate, commit the winner. Returns `false` when no unselected
    /// candidate remains.
    ///
    /// [`greedy_diverse`]: crate::greedy_diverse
    pub(crate) fn round(&mut self) -> bool {
        let mut best: Option<(Candidate, f64)> = None;
        for li in 0..self.roster.lists.len() {
            self.scan_bucket(li, &mut best);
        }
        match best {
            Some((winner, _)) => {
                self.accept(winner);
                true
            }
            None => false,
        }
    }

    /// Folds `e` (evaluated at `h`) into the running best under the exact
    /// [`greedy_diverse`] predicate.
    ///
    /// [`greedy_diverse`]: crate::greedy_diverse
    fn fold(&self, li: usize, e: &PrunedEntry, h: f64, best: &mut Option<(Candidate, f64)>) {
        let cand = Candidate::new(
            e.replica,
            VotingPower::new(e.power),
            self.roster.configs[li],
            e.attested,
        );
        let better = match best {
            None => true,
            Some((best_c, best_h)) => {
                h > *best_h + TIE_EPS
                    || ((h - *best_h).abs() <= TIE_EPS && preferred(&cand, best_c))
            }
        };
        if better {
            *best = Some((cand, h));
        }
    }

    /// Evaluates bucket `li`'s band around the analytic peak.
    fn scan_bucket(&self, li: usize, best: &mut Option<(Candidate, f64)>) {
        let list = &self.roster.lists[li];
        if list.is_empty() {
            return;
        }
        let b = self.acc.weight(li);
        let w = self.acc.total_weight();
        if w == b {
            // Degenerate bucket: the whole committee's power (possibly
            // zero) already sits here, so every candidate lands on
            // single-support entropy — exactly +0.0 — and the fold reduces
            // to the max-preferred unselected entry, i.e. the list tail.
            if let Some(e) = list.iter().rev().find(|e| !self.is_selected(e.replica)) {
                let h = self.acc.peek_add(li, e.power);
                self.fold(li, e, h, best);
            }
            return;
        }

        // Analytic peak locator: f peaks where b + p = 2^{S′/(W−b)}. Float
        // error (or ±∞ saturation) only shifts where the walk *starts*;
        // the exact evaluations below decide everything.
        let s_prime = self.acc.weighted_log_sum() - xlog2(b);
        let target = (s_prime / ((w - b) as f64)).exp2() - b as f64;
        let idx = list.partition_point(|e| (e.power as f64) < target);

        // Expand outward from the bracket. f is unimodal in power, so each
        // direction's gains only fall; once one drops below the band
        // ceiling minus the guard band it — and everything beyond it — is
        // provably outside any possible tie with the round winner.
        let mut ceiling = f64::NEG_INFINITY;
        for e in list[..idx].iter().rev() {
            if self.is_selected(e.replica) {
                continue;
            }
            let h = self.acc.peek_add(li, e.power);
            if h < ceiling - BAND {
                break;
            }
            if h > ceiling {
                ceiling = h;
            }
            self.fold(li, e, h, best);
        }
        for e in &list[idx..] {
            if self.is_selected(e.replica) {
                continue;
            }
            let h = self.acc.peek_add(li, e.power);
            if h < ceiling - BAND {
                break;
            }
            if h > ceiling {
                ceiling = h;
            }
            self.fold(li, e, h, best);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::greedy::{greedy_diverse, greedy_diverse_naive};

    fn pool(n: u64, m: usize) -> Vec<Candidate> {
        (0..n)
            .map(|i| {
                Candidate::new(
                    ReplicaId::new(i),
                    VotingPower::new(1 + (i * 37) % 500),
                    (i as usize * i as usize) % m,
                    i % 3 != 0,
                )
            })
            .collect()
    }

    #[test]
    fn pruned_matches_incremental_and_naive() {
        let candidates = pool(60, 7);
        let roster = PrunedRoster::build(&candidates);
        for k in [0, 1, 5, 13, 40, 60, 100] {
            let pruned = roster.select(k);
            assert_eq!(pruned.members(), greedy_diverse(&candidates, k).members());
            assert_eq!(
                pruned.members(),
                greedy_diverse_naive(&candidates, k).members(),
                "k = {k}"
            );
        }
    }

    #[test]
    fn pruned_handles_ties_and_zero_power() {
        // Heavy exact ties (many equal powers) plus zero-power rows.
        let mut candidates: Vec<Candidate> = (0..30u64)
            .map(|i| {
                Candidate::new(
                    ReplicaId::new(i),
                    VotingPower::new(10),
                    (i % 3) as usize,
                    true,
                )
            })
            .collect();
        candidates.push(Candidate::new(
            ReplicaId::new(99),
            VotingPower::ZERO,
            0,
            true,
        ));
        let roster = PrunedRoster::build(&candidates);
        assert_eq!(roster.len(), 30);
        for k in [1, 2, 7, 30] {
            assert_eq!(
                roster.select(k).members(),
                greedy_diverse(&candidates, k).members(),
                "k = {k}"
            );
        }
    }

    #[test]
    fn pruned_matches_on_sparse_configs() {
        let candidates: Vec<Candidate> = (0..24u64)
            .map(|i| {
                Candidate::new(
                    ReplicaId::new(i),
                    VotingPower::new(1 + (i * 37) % 500),
                    ((i * i) as usize % 7) * 1_000_003,
                    true,
                )
            })
            .collect();
        let roster = PrunedRoster::build(&candidates);
        for k in [1, 5, 12, 24] {
            assert_eq!(
                roster.select(k).members(),
                greedy_diverse_naive(&candidates, k).members(),
                "k = {k}"
            );
        }
    }

    #[test]
    fn dense_build_matches_sparse_build() {
        let candidates = pool(48, 6);
        let sparse = PrunedRoster::build(&candidates);
        let dense = PrunedRoster::from_dense(6, &candidates);
        for k in [1, 6, 20, 48] {
            assert_eq!(sparse.select(k).members(), dense.select(k).members());
        }
    }

    #[test]
    fn incremental_maintenance_matches_bulk_build() {
        let mut candidates = pool(40, 5);
        let mut roster = PrunedRoster::build(&candidates);
        // Remove a third, add some newcomers, re-power one.
        let removed: Vec<Candidate> = candidates.iter().copied().step_by(3).collect();
        for c in &removed {
            assert!(roster.remove(c));
            assert!(!roster.remove(c), "double-remove reports absence");
        }
        candidates.retain(|c| !removed.contains(c));
        for i in 100..108u64 {
            let c = Candidate::new(
                ReplicaId::new(i),
                VotingPower::new(7 * i),
                (i % 9) as usize,
                true,
            );
            roster.insert(&c);
            candidates.push(c);
        }
        let rebuilt = PrunedRoster::build(&candidates);
        assert_eq!(roster.len(), rebuilt.len());
        for k in [1, 4, 17, 40] {
            assert_eq!(
                roster.select(k).members(),
                greedy_diverse(&candidates, k).members(),
                "k = {k}"
            );
        }
    }

    #[test]
    fn dense_slot_splices_track_bucket_birth_and_death() {
        // Dense roster over 4 slots; empty slot 2's bucket dies, a new
        // bucket is born at position 1.
        let candidates: Vec<Candidate> = vec![
            Candidate::new(ReplicaId::new(0), VotingPower::new(50), 0, true),
            Candidate::new(ReplicaId::new(1), VotingPower::new(30), 1, true),
            Candidate::new(ReplicaId::new(2), VotingPower::new(20), 2, true),
            Candidate::new(ReplicaId::new(3), VotingPower::new(10), 3, true),
        ];
        let mut roster = PrunedRoster::from_dense(4, &candidates);
        // Slot 2's only member departs, then the slot is spliced out and a
        // fresh slot inserted at position 1; surviving entries keep their
        // *new* positional configs.
        assert!(roster.remove(&candidates[2]));
        roster.splice_dense_slots(&[2], &[1]);
        assert_eq!(roster.num_configs(), 4);
        let newcomer = Candidate::new(ReplicaId::new(9), VotingPower::new(40), 1, true);
        roster.insert(&newcomer);
        // Expected final layout: old slots 0,1,3 → 0,2,3 plus the newcomer
        // at slot 1.
        let patched: Vec<Candidate> = vec![
            Candidate::new(ReplicaId::new(0), VotingPower::new(50), 0, true),
            newcomer,
            Candidate::new(ReplicaId::new(1), VotingPower::new(30), 2, true),
            Candidate::new(ReplicaId::new(3), VotingPower::new(10), 3, true),
        ];
        assert_eq!(roster, PrunedRoster::from_dense(4, &patched));
        for k in [1, 2, 4] {
            assert_eq!(
                roster.select(k).members(),
                greedy_diverse(&patched, k).members()
            );
        }
    }

    #[test]
    #[should_panic(expected = "still has entries")]
    fn splicing_out_a_populated_slot_panics() {
        let candidates = vec![Candidate::new(
            ReplicaId::new(0),
            VotingPower::new(5),
            0,
            true,
        )];
        let mut roster = PrunedRoster::from_dense(1, &candidates);
        roster.splice_dense_slots(&[0], &[]);
    }

    #[test]
    fn empty_roster_selects_nothing() {
        let roster = PrunedRoster::build(&[]);
        assert!(roster.is_empty());
        assert!(roster.select(5).is_empty());
        let dense = PrunedRoster::from_dense(3, &[]);
        assert_eq!(dense.num_configs(), 3);
        assert!(dense.select(5).is_empty());
    }

    #[test]
    fn remove_batch_equals_one_by_one_removes() {
        let candidates = pool(120, 5);
        // Every third candidate departs, plus rows that were never
        // present (a zero-power row and an unknown config) — both must be
        // ignored exactly as `remove` ignores them.
        let mut departing: Vec<Candidate> = candidates.iter().copied().step_by(3).collect();
        departing.push(Candidate::new(
            ReplicaId::new(999),
            VotingPower::ZERO,
            0,
            true,
        ));
        departing.push(Candidate::new(
            ReplicaId::new(998),
            VotingPower::new(7),
            4_000,
            true,
        ));
        let mut batched = PrunedRoster::build(&candidates);
        batched.remove_batch(&departing);
        let mut serial = PrunedRoster::build(&candidates);
        for c in &departing {
            serial.remove(c);
        }
        assert_eq!(batched, serial);
        assert_eq!(batched.len(), serial.len());
        assert_eq!(batched.select(9).members(), serial.select(9).members());
    }

    #[test]
    fn insert_batch_equals_one_by_one_inserts() {
        let base = pool(80, 5);
        // Arrivals include rows for existing configs, a brand-new config
        // (list creation), and a zero-power row (ignored).
        let mut arriving = pool(40, 9)
            .into_iter()
            .map(|c| {
                Candidate::new(
                    ReplicaId::new(c.replica().as_u64() + 500),
                    c.power(),
                    c.config(),
                    c.attested(),
                )
            })
            .collect::<Vec<_>>();
        arriving.push(Candidate::new(
            ReplicaId::new(997),
            VotingPower::ZERO,
            2,
            false,
        ));
        let mut batched = PrunedRoster::build(&base);
        batched.insert_batch(&arriving);
        let mut serial = PrunedRoster::build(&base);
        for c in &arriving {
            serial.insert(c);
        }
        assert_eq!(batched, serial);
        assert_eq!(batched.len(), serial.len());
        assert_eq!(batched.select(9).members(), serial.select(9).members());
    }

    #[test]
    fn batch_churn_matches_full_rebuild() {
        let candidates = pool(150, 6);
        let mut roster = PrunedRoster::build(&candidates);
        let departing: Vec<Candidate> = candidates.iter().copied().step_by(4).collect();
        let arriving: Vec<Candidate> = (300..340u64)
            .map(|i| {
                Candidate::new(
                    ReplicaId::new(i),
                    VotingPower::new(1 + (i * 11) % 211),
                    (i as usize) % 6,
                    i % 2 == 0,
                )
            })
            .collect();
        roster.remove_batch(&departing);
        roster.insert_batch(&arriving);
        let survivors: Vec<Candidate> = candidates
            .iter()
            .filter(|c| !departing.iter().any(|d| d.replica() == c.replica()))
            .chain(arriving.iter())
            .copied()
            .collect();
        assert_eq!(roster, PrunedRoster::build(&survivors));
    }
}
