//! # `fi-committee` — diversity-enforcing committee selection
//!
//! Permissionless protocols that elect a consensus committee (paper §II-A's
//! "membership selection to form a consensus committee", ref \[15\]) get to
//! *choose* which replicas hold voting power. That choice is the one lever a
//! permissionless system has for fault independence: given attested
//! configurations (from `fi-attest`), the selection policy can maximise the
//! entropy of the committee's configuration distribution instead of blindly
//! following stake.
//!
//! Policies implemented:
//!
//! * [`baseline::top_stake`] — highest stake wins (what delegation
//!   concentrates toward; the paper's oligopoly);
//! * [`baseline::random_weighted`] — classic stake-weighted sortition;
//! * [`greedy::greedy_diverse`] — pick members to maximise committee
//!   entropy at every step;
//! * [`capping::proportional_cap`] — stake order, but no configuration may
//!   exceed a share cap;
//! * [`twotier::two_tier_weighted`] — the paper's §V sketch: attested
//!   candidates weigh more than unattested ones in the sortition.
//!
//! Serving-grade execution of the greedy policy lives in two further
//! modules: [`pruned`] indexes candidates per configuration bucket and
//! brackets each bucket's *analytic* entropy peak so a cold selection is
//! subquadratic, and [`warm`] replays the previous epoch's committee
//! against only the churned candidates so steady-state re-selection is
//! O(k · churn). Both produce member sequences byte-identical to
//! [`greedy::greedy_diverse`] (and its naive oracle).
//!
//! ## Example
//!
//! ```
//! use fi_committee::prelude::*;
//! use fi_types::{ReplicaId, VotingPower};
//!
//! // 12 candidates on 3 configurations, heavily skewed stake.
//! let candidates: Vec<Candidate> = (0..12)
//!     .map(|i| Candidate::new(
//!         ReplicaId::new(i),
//!         VotingPower::new(if i == 0 { 1_000 } else { 50 }),
//!         (i % 3) as usize,
//!         true,
//!     ))
//!     .collect();
//! let by_stake = top_stake(&candidates, 6);
//! let diverse = greedy_diverse(&candidates, 6);
//! // The diverse committee never has lower configuration entropy.
//! assert!(diverse.entropy_bits() >= by_stake.entropy_bits());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod baseline;
pub mod candidate;
pub mod capping;
pub mod greedy;
pub mod pruned;
pub mod twotier;
pub mod warm;

pub use baseline::{random_weighted, top_stake};
pub use candidate::{Candidate, Committee};
pub use capping::proportional_cap;
pub use greedy::greedy_diverse;
pub use pruned::PrunedRoster;
pub use twotier::two_tier_weighted;
pub use warm::{warm_greedy, WarmReport};

/// Convenient glob import.
pub mod prelude {
    pub use crate::baseline::{random_weighted, top_stake};
    pub use crate::candidate::{Candidate, Committee};
    pub use crate::capping::proportional_cap;
    pub use crate::greedy::greedy_diverse;
    pub use crate::pruned::PrunedRoster;
    pub use crate::twotier::two_tier_weighted;
    pub use crate::warm::{warm_greedy, WarmReport};
}
