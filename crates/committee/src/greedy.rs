//! Greedy entropy-maximising selection.
//!
//! The selection loop is the paper's headline operation (steering a
//! committee toward κ-optimal fault independence, Definition 1) and the
//! workspace's hottest path: a chain re-selects continuously under
//! rotation. [`greedy_diverse`] therefore evaluates each candidate's
//! marginal entropy gain in O(1) through an
//! [`EntropyAccumulator`](fi_entropy::EntropyAccumulator) — the whole
//! selection is O(n log n + n·k) with a constant number of allocations,
//! instead of the naive O(n·k·(k+m)) with ~4 heap allocations per trial.
//! The pre-refactor implementation is kept verbatim as
//! [`greedy_diverse_naive`], the equivalence oracle for property tests and
//! the `perf` harness.

use std::collections::HashMap;

use fi_entropy::{Distribution, EntropyAccumulator};
use fi_types::VotingPower;

use crate::candidate::{Candidate, Committee};

/// Selects `k` members by repeatedly adding the candidate that maximises
/// the committee's configuration entropy (power-weighted). Ties are broken
/// toward higher stake, then lower replica id, so the result is
/// deterministic.
///
/// This is the constructive counterpart of Definition 1: it steers the
/// committee toward κ-optimal fault independence as far as the candidate
/// pool allows. Selection order is identical to [`greedy_diverse_naive`];
/// only the cost differs.
#[must_use]
pub fn greedy_diverse(candidates: &[Candidate], k: usize) -> Committee {
    // Map the candidates' (possibly sparse) configuration indices to dense
    // accumulator slots once, up front.
    let mut configs: Vec<usize> = candidates
        .iter()
        .filter(|c| !c.power().is_zero())
        .map(Candidate::config)
        .collect();
    configs.sort_unstable();
    configs.dedup();
    let mut remaining: Vec<(Candidate, usize)> = candidates
        .iter()
        .filter(|c| !c.power().is_zero())
        .map(|c| {
            let slot = configs
                .binary_search(&c.config())
                .expect("every remaining config is in the slot map");
            (*c, slot)
        })
        .collect();

    let mut acc = EntropyAccumulator::new(configs.len());
    let mut members: Vec<Candidate> = Vec::with_capacity(k.min(remaining.len()));

    while members.len() < k && !remaining.is_empty() {
        let mut best: Option<(usize, f64)> = None;
        for (i, (cand, slot)) in remaining.iter().enumerate() {
            // O(1) marginal gain: no clone, no distribution rebuild.
            let entropy = acc.peek_add(*slot, cand.power().as_units());
            let better = match best {
                None => true,
                Some((best_i, best_h)) => {
                    entropy > best_h + 1e-12
                        || ((entropy - best_h).abs() <= 1e-12
                            && preferred(cand, &remaining[best_i].0))
                }
            };
            if better {
                best = Some((i, entropy));
            }
        }
        let (idx, _) = best.expect("remaining is non-empty");
        let (cand, slot) = remaining.swap_remove(idx);
        acc.add(slot, cand.power().as_units());
        members.push(cand);
    }
    Committee::new(members)
}

/// The pre-refactor O(n·k·(k+m)) greedy selection, kept verbatim as the
/// equivalence and performance oracle: it re-aggregates a `HashMap`-backed
/// distribution and recomputes full Shannon entropy for every candidate in
/// every round. Property tests assert [`greedy_diverse`] selects the
/// byte-identical member sequence; the `perf` binary reports the speedup.
#[doc(hidden)]
#[must_use]
pub fn greedy_diverse_naive(candidates: &[Candidate], k: usize) -> Committee {
    let mut remaining: Vec<Candidate> = candidates
        .iter()
        .copied()
        .filter(|c| !c.power().is_zero())
        .collect();
    let mut members: Vec<Candidate> = Vec::with_capacity(k.min(remaining.len()));

    while members.len() < k && !remaining.is_empty() {
        let mut best: Option<(usize, f64)> = None;
        for (i, cand) in remaining.iter().enumerate() {
            let mut trial = members.clone();
            trial.push(*cand);
            let entropy = naive_entropy_bits(&trial);
            let better = match best {
                None => true,
                Some((best_i, best_h)) => {
                    entropy > best_h + 1e-12
                        || ((entropy - best_h).abs() <= 1e-12
                            && preferred(cand, &remaining[best_i]))
                }
            };
            if better {
                best = Some((i, entropy));
            }
        }
        let (idx, _) = best.expect("remaining is non-empty");
        members.push(remaining.swap_remove(idx));
    }
    Committee::new(members)
}

/// The seed implementation's per-trial evaluation: aggregate a `HashMap`,
/// sort it, build a [`Distribution`], compute Shannon entropy.
fn naive_entropy_bits(members: &[Candidate]) -> f64 {
    let mut acc: HashMap<usize, VotingPower> = HashMap::new();
    for m in members {
        *acc.entry(m.config()).or_insert(VotingPower::ZERO) += m.power();
    }
    let mut rows: Vec<(usize, VotingPower)> = acc.into_iter().collect();
    rows.sort_by_key(|&(c, _)| c);
    let units: Vec<u64> = rows.iter().map(|&(_, p)| p.as_units()).collect();
    Distribution::from_counts(&units)
        .map(|d| d.shannon_entropy())
        .unwrap_or(0.0)
}

/// The deterministic tie-break shared by every greedy engine (incremental,
/// naive oracle, pruned, warm-start): higher stake first, then lower
/// replica id.
pub(crate) fn preferred(a: &Candidate, b: &Candidate) -> bool {
    (a.power(), std::cmp::Reverse(a.replica())) > (b.power(), std::cmp::Reverse(b.replica()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baseline::top_stake;
    use fi_types::{ReplicaId, VotingPower};

    fn pool() -> Vec<Candidate> {
        // 9 candidates, 3 configurations; stake concentrated on config 0.
        (0..9u64)
            .map(|i| {
                let config = if i < 5 { 0 } else { 1 + (i as usize % 2) };
                let power = if i < 5 { 100 } else { 40 };
                Candidate::new(ReplicaId::new(i), VotingPower::new(power), config, true)
            })
            .collect()
    }

    #[test]
    fn greedy_beats_top_stake_on_entropy() {
        let candidates = pool();
        let greedy = greedy_diverse(&candidates, 6);
        let stake = top_stake(&candidates, 6);
        assert!(greedy.entropy_bits() > stake.entropy_bits());
        assert!(greedy.worst_config_share() < stake.worst_config_share());
    }

    #[test]
    fn greedy_spreads_across_configs() {
        let committee = greedy_diverse(&pool(), 3);
        let configs: Vec<usize> = committee.members().iter().map(Candidate::config).collect();
        let mut unique = configs.clone();
        unique.sort_unstable();
        unique.dedup();
        assert_eq!(unique.len(), 3, "one member per configuration: {configs:?}");
    }

    #[test]
    fn greedy_is_deterministic() {
        let candidates = pool();
        assert_eq!(
            greedy_diverse(&candidates, 5),
            greedy_diverse(&candidates, 5)
        );
    }

    #[test]
    fn greedy_handles_small_pools() {
        let candidates = pool();
        let all = greedy_diverse(&candidates, 100);
        assert_eq!(all.len(), 9);
        let none = greedy_diverse(&candidates, 0);
        assert!(none.is_empty());
        let empty = greedy_diverse(&[], 5);
        assert!(empty.is_empty());
    }

    #[test]
    fn greedy_prefers_higher_stake_on_entropy_ties() {
        // Two candidates, same configuration: entropy is 0 either way, so
        // the higher-stake one is picked.
        let candidates = vec![
            Candidate::new(ReplicaId::new(0), VotingPower::new(10), 0, true),
            Candidate::new(ReplicaId::new(1), VotingPower::new(90), 0, true),
        ];
        let committee = greedy_diverse(&candidates, 1);
        assert_eq!(committee.members()[0].replica(), ReplicaId::new(1));
    }

    #[test]
    fn greedy_skips_zero_power() {
        let candidates = vec![
            Candidate::new(ReplicaId::new(0), VotingPower::ZERO, 0, true),
            Candidate::new(ReplicaId::new(1), VotingPower::new(5), 1, true),
        ];
        let committee = greedy_diverse(&candidates, 2);
        assert_eq!(committee.len(), 1);
        assert_eq!(committee.members()[0].replica(), ReplicaId::new(1));
    }

    #[test]
    fn incremental_matches_naive_oracle_on_fixture_pools() {
        let candidates = pool();
        for k in 0..=10 {
            let fast = greedy_diverse(&candidates, k);
            let naive = greedy_diverse_naive(&candidates, k);
            assert_eq!(fast.members(), naive.members(), "k = {k}");
        }
    }

    #[test]
    fn incremental_matches_naive_oracle_on_sparse_configs() {
        // Sparse, high configuration indices exercise the slot map.
        let candidates: Vec<Candidate> = (0..24u64)
            .map(|i| {
                Candidate::new(
                    ReplicaId::new(i),
                    VotingPower::new(1 + (i * 37) % 500),
                    ((i * i) as usize % 7) * 1_000_003,
                    true,
                )
            })
            .collect();
        for k in [1, 5, 12, 24] {
            let fast = greedy_diverse(&candidates, k);
            let naive = greedy_diverse_naive(&candidates, k);
            assert_eq!(fast.members(), naive.members(), "k = {k}");
        }
    }
}
