//! Greedy entropy-maximising selection.

use crate::candidate::{Candidate, Committee};

/// Selects `k` members by repeatedly adding the candidate that maximises
/// the committee's configuration entropy (power-weighted). Ties are broken
/// toward higher stake, then lower replica id, so the result is
/// deterministic.
///
/// This is the constructive counterpart of Definition 1: it steers the
/// committee toward κ-optimal fault independence as far as the candidate
/// pool allows.
#[must_use]
pub fn greedy_diverse(candidates: &[Candidate], k: usize) -> Committee {
    let mut remaining: Vec<Candidate> = candidates
        .iter()
        .copied()
        .filter(|c| !c.power().is_zero())
        .collect();
    let mut members: Vec<Candidate> = Vec::with_capacity(k.min(remaining.len()));

    while members.len() < k && !remaining.is_empty() {
        let mut best: Option<(usize, f64)> = None;
        for (i, cand) in remaining.iter().enumerate() {
            let mut trial = members.clone();
            trial.push(*cand);
            let entropy = Committee::new(trial).entropy_bits();
            let better = match best {
                None => true,
                Some((best_i, best_h)) => {
                    entropy > best_h + 1e-12
                        || ((entropy - best_h).abs() <= 1e-12
                            && preferred(cand, &remaining[best_i]))
                }
            };
            if better {
                best = Some((i, entropy));
            }
        }
        let (idx, _) = best.expect("remaining is non-empty");
        members.push(remaining.swap_remove(idx));
    }
    Committee::new(members)
}

fn preferred(a: &Candidate, b: &Candidate) -> bool {
    (a.power(), std::cmp::Reverse(a.replica())) > (b.power(), std::cmp::Reverse(b.replica()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baseline::top_stake;
    use fi_types::{ReplicaId, VotingPower};

    fn pool() -> Vec<Candidate> {
        // 9 candidates, 3 configurations; stake concentrated on config 0.
        (0..9u64)
            .map(|i| {
                let config = if i < 5 { 0 } else { 1 + (i as usize % 2) };
                let power = if i < 5 { 100 } else { 40 };
                Candidate::new(ReplicaId::new(i), VotingPower::new(power), config, true)
            })
            .collect()
    }

    #[test]
    fn greedy_beats_top_stake_on_entropy() {
        let candidates = pool();
        let greedy = greedy_diverse(&candidates, 6);
        let stake = top_stake(&candidates, 6);
        assert!(greedy.entropy_bits() > stake.entropy_bits());
        assert!(greedy.worst_config_share() < stake.worst_config_share());
    }

    #[test]
    fn greedy_spreads_across_configs() {
        let committee = greedy_diverse(&pool(), 3);
        let configs: Vec<usize> = committee.members().iter().map(Candidate::config).collect();
        let mut unique = configs.clone();
        unique.sort_unstable();
        unique.dedup();
        assert_eq!(unique.len(), 3, "one member per configuration: {configs:?}");
    }

    #[test]
    fn greedy_is_deterministic() {
        let candidates = pool();
        assert_eq!(
            greedy_diverse(&candidates, 5),
            greedy_diverse(&candidates, 5)
        );
    }

    #[test]
    fn greedy_handles_small_pools() {
        let candidates = pool();
        let all = greedy_diverse(&candidates, 100);
        assert_eq!(all.len(), 9);
        let none = greedy_diverse(&candidates, 0);
        assert!(none.is_empty());
        let empty = greedy_diverse(&[], 5);
        assert!(empty.is_empty());
    }

    #[test]
    fn greedy_prefers_higher_stake_on_entropy_ties() {
        // Two candidates, same configuration: entropy is 0 either way, so
        // the higher-stake one is picked.
        let candidates = vec![
            Candidate::new(ReplicaId::new(0), VotingPower::new(10), 0, true),
            Candidate::new(ReplicaId::new(1), VotingPower::new(90), 0, true),
        ];
        let committee = greedy_diverse(&candidates, 1);
        assert_eq!(committee.members()[0].replica(), ReplicaId::new(1));
    }

    #[test]
    fn greedy_skips_zero_power() {
        let candidates = vec![
            Candidate::new(ReplicaId::new(0), VotingPower::ZERO, 0, true),
            Candidate::new(ReplicaId::new(1), VotingPower::new(5), 1, true),
        ];
        let committee = greedy_diverse(&candidates, 2);
        assert_eq!(committee.len(), 1);
        assert_eq!(committee.members()[0].replica(), ReplicaId::new(1));
    }
}
