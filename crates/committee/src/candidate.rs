//! Candidates and committees.

use std::collections::HashMap;

use fi_entropy::Distribution;
use fi_types::{ReplicaId, VotingPower};
use serde::{Deserialize, Serialize};

/// A replica eligible for committee membership.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Candidate {
    replica: ReplicaId,
    power: VotingPower,
    config: usize,
    attested: bool,
}

impl Candidate {
    /// Creates a candidate: its stake/power, its configuration index (from
    /// attestation; unattested candidates carry their *claimed* index but
    /// policies treat them as opaque), and whether that configuration is
    /// attested.
    #[must_use]
    pub fn new(replica: ReplicaId, power: VotingPower, config: usize, attested: bool) -> Self {
        Candidate {
            replica,
            power,
            config,
            attested,
        }
    }

    /// The replica id.
    #[must_use]
    pub fn replica(&self) -> ReplicaId {
        self.replica
    }

    /// The candidate's voting power / stake.
    #[must_use]
    pub fn power(&self) -> VotingPower {
        self.power
    }

    /// The configuration index.
    #[must_use]
    pub fn config(&self) -> usize {
        self.config
    }

    /// Whether the configuration is attested.
    #[must_use]
    pub fn attested(&self) -> bool {
        self.attested
    }
}

/// A selected committee.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Committee {
    members: Vec<Candidate>,
}

impl Committee {
    /// Wraps selected members (order preserved as selected).
    #[must_use]
    pub fn new(members: Vec<Candidate>) -> Self {
        Committee { members }
    }

    /// The members in selection order.
    #[must_use]
    pub fn members(&self) -> &[Candidate] {
        &self.members
    }

    /// Committee size.
    #[must_use]
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Whether the committee is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// Total committee voting power (`n_t` of the committee, §II-A).
    #[must_use]
    pub fn total_power(&self) -> VotingPower {
        self.members.iter().map(Candidate::power).sum()
    }

    /// Power aggregated per configuration index, sorted by index.
    #[must_use]
    pub fn power_by_config(&self) -> Vec<(usize, VotingPower)> {
        let mut acc: HashMap<usize, VotingPower> = HashMap::new();
        for m in &self.members {
            *acc.entry(m.config).or_insert(VotingPower::ZERO) += m.power;
        }
        let mut rows: Vec<(usize, VotingPower)> = acc.into_iter().collect();
        rows.sort_by_key(|&(c, _)| c);
        rows
    }

    /// The committee's power-weighted configuration distribution.
    ///
    /// # Errors
    ///
    /// Returns a [`fi_entropy::DistributionError`] for an empty or
    /// zero-power committee.
    pub fn distribution(&self) -> Result<Distribution, fi_entropy::DistributionError> {
        let units: Vec<u64> = self
            .power_by_config()
            .iter()
            .map(|(_, p)| p.as_units())
            .collect();
        Distribution::from_counts(&units)
    }

    /// Shannon entropy (bits) of the configuration distribution; `0.0` for
    /// degenerate committees.
    #[must_use]
    pub fn entropy_bits(&self) -> f64 {
        self.distribution()
            .map(|d| d.shannon_entropy())
            .unwrap_or(0.0)
    }

    /// The worst single-configuration share — the voting power one
    /// configuration-level vulnerability compromises (lower is better;
    /// bounded by `2^{−H_∞}`).
    #[must_use]
    pub fn worst_config_share(&self) -> f64 {
        let total = self.total_power();
        self.power_by_config()
            .iter()
            .map(|(_, p)| p.share_of(total))
            .fold(0.0, f64::max)
    }

    /// Share of committee power held by attested members.
    #[must_use]
    pub fn attested_share(&self) -> f64 {
        let attested: VotingPower = self
            .members
            .iter()
            .filter(|m| m.attested())
            .map(Candidate::power)
            .sum();
        attested.share_of(self.total_power())
    }
}

impl FromIterator<Candidate> for Committee {
    fn from_iter<I: IntoIterator<Item = Candidate>>(iter: I) -> Self {
        Committee {
            members: iter.into_iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn candidates() -> Vec<Candidate> {
        vec![
            Candidate::new(ReplicaId::new(0), VotingPower::new(50), 0, true),
            Candidate::new(ReplicaId::new(1), VotingPower::new(30), 0, false),
            Candidate::new(ReplicaId::new(2), VotingPower::new(20), 1, true),
        ]
    }

    #[test]
    fn accessors() {
        let c = candidates()[0];
        assert_eq!(c.replica(), ReplicaId::new(0));
        assert_eq!(c.power(), VotingPower::new(50));
        assert_eq!(c.config(), 0);
        assert!(c.attested());
    }

    #[test]
    fn committee_aggregates() {
        let committee: Committee = candidates().into_iter().collect();
        assert_eq!(committee.len(), 3);
        assert!(!committee.is_empty());
        assert_eq!(committee.total_power(), VotingPower::new(100));
        assert_eq!(
            committee.power_by_config(),
            vec![(0, VotingPower::new(80)), (1, VotingPower::new(20))]
        );
        assert!((committee.worst_config_share() - 0.8).abs() < 1e-12);
        assert!((committee.attested_share() - 0.7).abs() < 1e-12);
    }

    #[test]
    fn entropy_of_committee() {
        let committee: Committee = candidates().into_iter().collect();
        let d = committee.distribution().unwrap();
        assert_eq!(d.dimension(), 2);
        let expect = -(0.8f64 * 0.8f64.log2() + 0.2 * 0.2f64.log2());
        assert!((committee.entropy_bits() - expect).abs() < 1e-12);
    }

    #[test]
    fn empty_committee_degenerates_gracefully() {
        let committee = Committee::new(vec![]);
        assert!(committee.is_empty());
        assert_eq!(committee.entropy_bits(), 0.0);
        assert_eq!(committee.worst_config_share(), 0.0);
        assert!(committee.distribution().is_err());
        assert_eq!(committee.attested_share(), 0.0);
    }
}
