//! Candidates and committees.

use fi_entropy::incremental::weighted_entropy_bits;
use fi_entropy::Distribution;
use fi_types::{ReplicaId, VotingPower};
use serde::{Deserialize, Serialize};

/// A replica eligible for committee membership.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Candidate {
    replica: ReplicaId,
    power: VotingPower,
    config: usize,
    attested: bool,
}

impl Candidate {
    /// Creates a candidate: its stake/power, its configuration index (from
    /// attestation; unattested candidates carry their *claimed* index but
    /// policies treat them as opaque), and whether that configuration is
    /// attested.
    #[must_use]
    pub fn new(replica: ReplicaId, power: VotingPower, config: usize, attested: bool) -> Self {
        Candidate {
            replica,
            power,
            config,
            attested,
        }
    }

    /// The replica id.
    #[must_use]
    pub fn replica(&self) -> ReplicaId {
        self.replica
    }

    /// The candidate's voting power / stake.
    #[must_use]
    pub fn power(&self) -> VotingPower {
        self.power
    }

    /// The configuration index.
    #[must_use]
    pub fn config(&self) -> usize {
        self.config
    }

    /// Whether the configuration is attested.
    #[must_use]
    pub fn attested(&self) -> bool {
        self.attested
    }
}

/// A selected committee.
///
/// Construction aggregates members once into a sorted-vec bucket map
/// (configuration index → summed power) and caches the total power and the
/// power-weighted configuration entropy, so the monitoring accessors
/// ([`power_by_config`](Self::power_by_config),
/// [`entropy_bits`](Self::entropy_bits), [`total_power`](Self::total_power),
/// [`worst_config_share`](Self::worst_config_share)) are O(1)/O(m) reads
/// with no hashing or re-derivation.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Committee {
    members: Vec<Candidate>,
    /// Power per configuration index, sorted by index (cache; derived from
    /// `members`). Zero-power buckets are kept so the distribution's
    /// dimension reflects every configuration present in the committee.
    buckets: Vec<(usize, VotingPower)>,
    /// Total committee power (cache).
    total: VotingPower,
    /// Power-weighted configuration entropy in bits (cache).
    entropy: f64,
}

/// Committees compare by their member sequence; the bucket/entropy caches
/// are deterministic functions of it.
impl PartialEq for Committee {
    fn eq(&self, other: &Self) -> bool {
        self.members == other.members
    }
}

impl Committee {
    /// Wraps selected members (order preserved as selected), building the
    /// per-configuration bucket cache in one sort + merge pass.
    #[must_use]
    pub fn new(members: Vec<Candidate>) -> Self {
        let mut buckets: Vec<(usize, VotingPower)> =
            members.iter().map(|m| (m.config, m.power)).collect();
        buckets.sort_unstable_by_key(|&(config, _)| config);
        buckets.dedup_by(|cur, prev| {
            if cur.0 == prev.0 {
                prev.1 += cur.1;
                true
            } else {
                false
            }
        });
        let total = buckets.iter().map(|&(_, p)| p).sum();
        let entropy = weighted_entropy_bits(buckets.iter().map(|&(_, p)| p.as_units()));
        Committee {
            members,
            buckets,
            total,
            entropy,
        }
    }

    /// The members in selection order.
    #[must_use]
    pub fn members(&self) -> &[Candidate] {
        &self.members
    }

    /// Committee size.
    #[must_use]
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Whether the committee is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// Total committee voting power (`n_t` of the committee, §II-A).
    /// Cached at construction — O(1).
    #[must_use]
    pub fn total_power(&self) -> VotingPower {
        self.total
    }

    /// Power aggregated per configuration index, sorted by index. Cached at
    /// construction — no hashing or allocation per call.
    #[must_use]
    pub fn power_by_config(&self) -> &[(usize, VotingPower)] {
        &self.buckets
    }

    /// The committee's power-weighted configuration distribution.
    ///
    /// # Errors
    ///
    /// Returns a [`fi_entropy::DistributionError`] for an empty or
    /// zero-power committee.
    pub fn distribution(&self) -> Result<Distribution, fi_entropy::DistributionError> {
        let units: Vec<u64> = self.buckets.iter().map(|(_, p)| p.as_units()).collect();
        Distribution::from_counts(&units)
    }

    /// Shannon entropy (bits) of the configuration distribution; `0.0` for
    /// degenerate committees. Cached at construction — O(1).
    #[must_use]
    pub fn entropy_bits(&self) -> f64 {
        self.entropy
    }

    /// The worst single-configuration share — the voting power one
    /// configuration-level vulnerability compromises (lower is better;
    /// bounded by `2^{−H_∞}`).
    #[must_use]
    pub fn worst_config_share(&self) -> f64 {
        self.buckets
            .iter()
            .map(|&(_, p)| p.share_of(self.total))
            .fold(0.0, f64::max)
    }

    /// Share of committee power held by attested members.
    #[must_use]
    pub fn attested_share(&self) -> f64 {
        let attested: VotingPower = self
            .members
            .iter()
            .filter(|m| m.attested())
            .map(Candidate::power)
            .sum();
        attested.share_of(self.total_power())
    }
}

impl FromIterator<Candidate> for Committee {
    fn from_iter<I: IntoIterator<Item = Candidate>>(iter: I) -> Self {
        Committee::new(iter.into_iter().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn candidates() -> Vec<Candidate> {
        vec![
            Candidate::new(ReplicaId::new(0), VotingPower::new(50), 0, true),
            Candidate::new(ReplicaId::new(1), VotingPower::new(30), 0, false),
            Candidate::new(ReplicaId::new(2), VotingPower::new(20), 1, true),
        ]
    }

    #[test]
    fn accessors() {
        let c = candidates()[0];
        assert_eq!(c.replica(), ReplicaId::new(0));
        assert_eq!(c.power(), VotingPower::new(50));
        assert_eq!(c.config(), 0);
        assert!(c.attested());
    }

    #[test]
    fn committee_aggregates() {
        let committee: Committee = candidates().into_iter().collect();
        assert_eq!(committee.len(), 3);
        assert!(!committee.is_empty());
        assert_eq!(committee.total_power(), VotingPower::new(100));
        assert_eq!(
            committee.power_by_config(),
            vec![(0, VotingPower::new(80)), (1, VotingPower::new(20))]
        );
        assert!((committee.worst_config_share() - 0.8).abs() < 1e-12);
        assert!((committee.attested_share() - 0.7).abs() < 1e-12);
    }

    #[test]
    fn entropy_of_committee() {
        let committee: Committee = candidates().into_iter().collect();
        let d = committee.distribution().unwrap();
        assert_eq!(d.dimension(), 2);
        let expect = -(0.8f64 * 0.8f64.log2() + 0.2 * 0.2f64.log2());
        assert!((committee.entropy_bits() - expect).abs() < 1e-12);
    }

    #[test]
    fn cached_aggregates_match_recomputation() {
        // The caches are built once at construction; they must agree with a
        // from-scratch recomputation over the members.
        let committee: Committee = candidates().into_iter().collect();
        let total: VotingPower = committee.members().iter().map(Candidate::power).sum();
        assert_eq!(committee.total_power(), total);
        let d = committee.distribution().unwrap();
        assert!((committee.entropy_bits() - d.shannon_entropy()).abs() < 1e-12);
        // Buckets are sorted by config index with no duplicates.
        for w in committee.power_by_config().windows(2) {
            assert!(w[0].0 < w[1].0);
        }
    }

    #[test]
    fn zero_power_members_keep_their_bucket() {
        // A zero-power candidate still contributes a configuration bucket
        // (dimension), matching the pre-cache HashMap behavior.
        let committee = Committee::new(vec![
            Candidate::new(ReplicaId::new(0), VotingPower::new(10), 0, true),
            Candidate::new(ReplicaId::new(1), VotingPower::ZERO, 5, true),
        ]);
        assert_eq!(
            committee.power_by_config(),
            vec![(0, VotingPower::new(10)), (5, VotingPower::ZERO)]
        );
        assert_eq!(committee.distribution().unwrap().dimension(), 2);
        assert_eq!(committee.entropy_bits(), 0.0);
    }

    #[test]
    fn empty_committee_degenerates_gracefully() {
        let committee = Committee::new(vec![]);
        assert!(committee.is_empty());
        assert_eq!(committee.entropy_bits(), 0.0);
        assert_eq!(committee.worst_config_share(), 0.0);
        assert!(committee.distribution().is_err());
        assert_eq!(committee.attested_share(), 0.0);
    }
}
