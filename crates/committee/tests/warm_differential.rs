//! Differential suite for the serving-grade selection engines: random
//! churn chains where, at **every** intermediate step, the incrementally
//! maintained [`PrunedRoster`] + warm-start replay must select the
//! byte-identical member sequence to the naive O(n·k·(k+m)) oracle over
//! the merged pool — through evictions of sitting members, tie-heavy power
//! distributions, and the high-churn fallback boundary.

use fi_committee::greedy::greedy_diverse_naive;
use fi_committee::prelude::*;
use fi_types::{ReplicaId, VotingPower};
use proptest::prelude::*;

/// One churn step against the current pool.
#[derive(Debug, Clone)]
enum Churn {
    /// Register (or re-register with a new row) device `id`.
    Upsert { id: u64, power: u64, config: usize },
    /// Deregister device `id` (a no-op if absent — still counted churned,
    /// which a warm start must tolerate).
    Remove { id: u64 },
}

fn churn_step(ids: u64, max_power: u64, configs: usize) -> impl Strategy<Value = Churn> {
    // The vendored `prop_oneof!` is an unweighted union; listing the upsert
    // arm three times biases chains toward growth (3:1 upsert:remove) so
    // pools stay populated.
    let upsert = || {
        (0..ids, 1..=max_power, 0..configs).prop_map(|(id, power, config)| Churn::Upsert {
            id,
            power,
            config,
        })
    };
    prop_oneof![
        upsert(),
        upsert(),
        upsert(),
        (0..ids).prop_map(|id| Churn::Remove { id }),
    ]
}

/// A chain: an initial pool followed by epochs of churn batches.
fn chain(
    ids: u64,
    max_power: u64,
    configs: usize,
) -> impl Strategy<Value = (Vec<Churn>, Vec<Vec<Churn>>)> {
    (
        proptest::collection::vec(churn_step(ids, max_power, configs), 5..40),
        proptest::collection::vec(
            proptest::collection::vec(churn_step(ids, max_power, configs), 1..8),
            1..6,
        ),
    )
}

/// Applies one batch to the pool (sorted by replica id), returning the
/// sorted churned-replica set.
fn apply(pool: &mut Vec<Candidate>, batch: &[Churn]) -> Vec<ReplicaId> {
    let mut churned: Vec<ReplicaId> = Vec::new();
    for step in batch {
        let (id, row) = match *step {
            Churn::Upsert { id, power, config } => (
                id,
                Some(Candidate::new(
                    ReplicaId::new(id),
                    VotingPower::new(power),
                    config,
                    id % 3 != 0,
                )),
            ),
            Churn::Remove { id } => (id, None),
        };
        let replica = ReplicaId::new(id);
        match (pool.binary_search_by_key(&replica, Candidate::replica), row) {
            (Ok(pos), Some(c)) => pool[pos] = c,
            (Ok(pos), None) => {
                pool.remove(pos);
            }
            (Err(pos), Some(c)) => pool.insert(pos, c),
            (Err(_), None) => {}
        }
        if let Err(pos) = churned.binary_search(&replica) {
            churned.insert(pos, replica);
        }
    }
    churned
}

/// Re-derives the roster patch the fleet layer performs: remove every
/// churned replica's old row, insert its new one.
fn patch_roster(
    roster: &mut PrunedRoster,
    old_pool: &[Candidate],
    new_pool: &[Candidate],
    churned: &[ReplicaId],
) {
    for &replica in churned {
        if let Ok(pos) = old_pool.binary_search_by_key(&replica, Candidate::replica) {
            roster.remove(&old_pool[pos]);
        }
    }
    for &replica in churned {
        if let Ok(pos) = new_pool.binary_search_by_key(&replica, Candidate::replica) {
            roster.insert(&new_pool[pos]);
        }
    }
}

/// Drives one chain: at every epoch the patched roster's warm-start (and
/// cold pruned) selection must equal the naive oracle over the merged
/// pool, for every probed k.
fn run_chain(initial: &[Churn], epochs: &[Vec<Churn>], ks: &[usize]) -> Result<(), TestCaseError> {
    let mut pool: Vec<Candidate> = Vec::new();
    apply(&mut pool, initial);
    let mut roster = PrunedRoster::build(&pool);
    let mut previous: Vec<Committee> = ks.iter().map(|&k| roster.select(k)).collect();
    for (ki, &k) in ks.iter().enumerate() {
        prop_assert_eq!(
            previous[ki].members(),
            greedy_diverse_naive(&pool, k).members(),
            "cold pruned selection diverged at the initial pool, k = {}",
            k
        );
    }

    for (e, batch) in epochs.iter().enumerate() {
        let old_pool = pool.clone();
        let churned = apply(&mut pool, batch);
        patch_roster(&mut roster, &old_pool, &pool, &churned);
        for (ki, &k) in ks.iter().enumerate() {
            let oracle = greedy_diverse_naive(&pool, k);
            let (warm, report) = warm_greedy(&roster, &pool, previous[ki].members(), &churned, k);
            prop_assert_eq!(
                warm.members(),
                oracle.members(),
                "warm selection diverged from the naive oracle at epoch {}, k = {} ({:?})",
                e,
                k,
                report
            );
            let cold = roster.select(k);
            prop_assert_eq!(
                cold.members(),
                oracle.members(),
                "patched-roster cold selection diverged at epoch {}, k = {}",
                e,
                k
            );
            previous[ki] = warm;
        }
    }
    Ok(())
}

proptest! {
    // Pinned case count: the vendored proptest runner derives every case
    // seed from the test name, so this suite is reproducible bit-for-bit.
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn warm_chain_matches_naive_oracle((initial, epochs) in chain(48, 10_000, 9)) {
        run_chain(&initial, &epochs, &[1, 6, 17])?;
    }

    #[test]
    fn warm_chain_matches_on_tie_heavy_pools((initial, epochs) in chain(40, 4, 3)) {
        // Powers drawn from {1..4} over 3 configs: almost every round is
        // an exact entropy tie, exercising the `preferred` fold and the
        // degenerate +0.0 buckets rather than the analytic peak.
        run_chain(&initial, &epochs, &[2, 9])?;
    }

    #[test]
    fn warm_chain_matches_across_the_fallback_boundary(
        (initial, epochs) in chain(16, 500, 4)
    ) {
        // Tiny pools: most batches churn more than 1/8 of the roster, so
        // chains cross the warm→cold fallback threshold in both
        // directions.
        run_chain(&initial, &epochs, &[3, 8])?;
    }
}

#[test]
fn eviction_of_every_sitting_member_is_repaired() {
    // Deterministic worst case: churn away the *entire* previous
    // committee. Warm start must diverge at round 0 and the repair must
    // still match the oracle.
    let mut pool: Vec<Candidate> = (0..30u64)
        .map(|i| {
            Candidate::new(
                ReplicaId::new(i),
                VotingPower::new(1 + (i * 97) % 700),
                (i % 5) as usize,
                true,
            )
        })
        .collect();
    let mut roster = PrunedRoster::build(&pool);
    let previous = roster.select(3);
    let old_pool = pool.clone();
    let mut churned: Vec<ReplicaId> = previous.members().iter().map(Candidate::replica).collect();
    churned.sort_unstable();
    pool.retain(|c| churned.binary_search(&c.replica()).is_err());
    patch_roster(&mut roster, &old_pool, &pool, &churned);
    let (warm, report) = warm_greedy(&roster, &pool, previous.members(), &churned, 3);
    assert_eq!(warm.members(), greedy_diverse_naive(&pool, 3).members());
    assert_eq!(report.replayed, 0);
    assert!(report.repaired == 3 || report.fell_back);
}
