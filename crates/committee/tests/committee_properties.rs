//! Property-based tests for committee selection: structural invariants
//! (size, uniqueness, membership) and policy dominance relations.

use fi_attest::TwoTierWeights;
use fi_committee::prelude::*;
use fi_types::{ReplicaId, VotingPower};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn candidate_pool() -> impl Strategy<Value = Vec<Candidate>> {
    proptest::collection::vec((1u64..10_000, 0usize..12, proptest::bool::ANY), 1..60).prop_map(
        |specs| {
            specs
                .into_iter()
                .enumerate()
                .map(|(i, (power, config, attested))| {
                    Candidate::new(
                        ReplicaId::new(i as u64),
                        VotingPower::new(power),
                        config,
                        attested,
                    )
                })
                .collect()
        },
    )
}

fn check_structure(
    committee: &Committee,
    pool: &[Candidate],
    k: usize,
) -> Result<(), TestCaseError> {
    prop_assert!(committee.len() <= k);
    prop_assert!(committee.len() <= pool.len());
    // No duplicates; every member drawn from the pool.
    let mut ids: Vec<ReplicaId> = committee.members().iter().map(|c| c.replica()).collect();
    ids.sort();
    let before = ids.len();
    ids.dedup();
    prop_assert_eq!(ids.len(), before);
    for m in committee.members() {
        prop_assert!(pool.iter().any(|c| c == m));
    }
    // Entropy within [0, log2(support)].
    let h = committee.entropy_bits();
    prop_assert!(h >= 0.0);
    prop_assert!(h <= 12f64.log2() + 1e-9);
    Ok(())
}

proptest! {
    // Pinned case count: the vendored proptest runner derives every case
    // seed from the test name, so this suite is reproducible bit-for-bit.
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn structural_invariants_all_policies(pool in candidate_pool(), k in 1usize..20, seed in 0u64..100) {
        check_structure(&top_stake(&pool, k), &pool, k)?;
        check_structure(&greedy_diverse(&pool, k), &pool, k)?;
        check_structure(&proportional_cap(&pool, k, 0.3), &pool, k)?;
        let mut rng = StdRng::seed_from_u64(seed);
        check_structure(&random_weighted(&pool, k, &mut rng), &pool, k)?;
        let mut rng = StdRng::seed_from_u64(seed);
        check_structure(
            &two_tier_weighted(&pool, k, TwoTierWeights::new(1.0, 0.4), &mut rng),
            &pool,
            k,
        )?;
    }

    /// Greedy selection never has lower entropy than top-stake at the same
    /// size (entropy is what it greedily maximises).
    #[test]
    fn greedy_dominates_top_stake(pool in candidate_pool(), k in 1usize..16) {
        let greedy = greedy_diverse(&pool, k);
        let stake = top_stake(&pool, k);
        // Compare only when both filled the same number of seats (zero-power
        // candidates are skipped by greedy).
        if greedy.len() == stake.len() {
            prop_assert!(
                greedy.entropy_bits() >= stake.entropy_bits() - 1e-9,
                "greedy {} < stake {}",
                greedy.entropy_bits(),
                stake.entropy_bits()
            );
        }
    }

    /// The seat cap is actually enforced.
    #[test]
    fn seat_cap_enforced(pool in candidate_pool(), k in 1usize..20, cap_pct in 1u32..=100) {
        let cap = f64::from(cap_pct) / 100.0;
        let committee = proportional_cap(&pool, k, cap);
        let max_seats = ((cap * k as f64).ceil() as usize).max(1);
        let mut per_config = std::collections::HashMap::new();
        for m in committee.members() {
            *per_config.entry(m.config()).or_insert(0usize) += 1;
        }
        for (&config, &seats) in &per_config {
            prop_assert!(seats <= max_seats, "config {config} has {seats} > {max_seats}");
        }
    }

    /// Zero unattested weight yields an all-attested committee.
    #[test]
    fn zero_weight_excludes_unattested(pool in candidate_pool(), k in 1usize..20, seed in 0u64..50) {
        let mut rng = StdRng::seed_from_u64(seed);
        let committee = two_tier_weighted(&pool, k, TwoTierWeights::new(1.0, 0.0), &mut rng);
        prop_assert!(committee.members().iter().all(Candidate::attested));
    }

    /// top_stake picks a maximal-power subset: its total power is at least
    /// that of any other policy's committee of at most the same size.
    #[test]
    fn top_stake_maximizes_power(pool in candidate_pool(), k in 1usize..16, seed in 0u64..50) {
        let stake = top_stake(&pool, k);
        let greedy = greedy_diverse(&pool, k);
        if greedy.len() == stake.len() {
            prop_assert!(stake.total_power() >= greedy.total_power());
        }
        let mut rng = StdRng::seed_from_u64(seed);
        let sortition = random_weighted(&pool, k, &mut rng);
        if sortition.len() == stake.len() {
            prop_assert!(stake.total_power() >= sortition.total_power());
        }
    }

    /// The O(1)-marginal-gain greedy selects the byte-identical member
    /// sequence as the pre-refactor naive oracle on every pool.
    #[test]
    fn greedy_matches_naive_oracle(pool in candidate_pool(), k in 1usize..20) {
        let fast = greedy_diverse(&pool, k);
        let naive = fi_committee::greedy::greedy_diverse_naive(&pool, k);
        prop_assert_eq!(fast.members(), naive.members());
        // Equal selections imply equal cached aggregates.
        prop_assert_eq!(fast.total_power(), naive.total_power());
        prop_assert_eq!(
            fast.entropy_bits().to_bits(),
            naive.entropy_bits().to_bits()
        );
    }

    /// Committee caches agree with from-scratch recomputation.
    #[test]
    fn committee_caches_are_consistent(pool in candidate_pool(), k in 1usize..20) {
        let committee = top_stake(&pool, k);
        let total: fi_types::VotingPower =
            committee.members().iter().map(Candidate::power).sum();
        prop_assert_eq!(committee.total_power(), total);
        if let Ok(d) = committee.distribution() {
            prop_assert!((committee.entropy_bits() - d.shannon_entropy()).abs() < 1e-9);
        } else {
            prop_assert_eq!(committee.entropy_bits(), 0.0);
        }
    }
}
