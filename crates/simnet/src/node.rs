//! The [`Node`] trait and the [`Context`] through which nodes act.

use core::fmt;

use fi_types::SimTime;
use rand::rngs::StdRng;
use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::event::{FaultEvent, TimerToken};

/// Index of a node within a simulation.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
#[serde(transparent)]
pub struct NodeId(usize);

impl NodeId {
    /// Creates a node id from a raw index.
    #[must_use]
    pub const fn new(index: usize) -> Self {
        NodeId(index)
    }

    /// The raw index.
    #[must_use]
    pub const fn index(self) -> usize {
        self.0
    }
}

impl From<usize> for NodeId {
    fn from(index: usize) -> Self {
        NodeId(index)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Actions a node can emit during a callback; applied by the engine after
/// the callback returns.
#[derive(Debug, Clone)]
pub(crate) enum Action<M> {
    Send { to: NodeId, payload: M },
    Broadcast { payload: M },
    SetTimer { delay: SimTime, token: TimerToken },
    Halt,
}

/// The node's window onto the simulation during a callback: clock, own id,
/// deterministic randomness, and outgoing actions.
pub struct Context<'a, M> {
    pub(crate) now: SimTime,
    pub(crate) id: NodeId,
    pub(crate) node_count: usize,
    pub(crate) rng: &'a mut StdRng,
    pub(crate) outbox: Vec<Action<M>>,
}

impl<M> Context<'_, M> {
    /// The current simulation time.
    #[must_use]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// This node's id.
    #[must_use]
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// Total number of nodes in the simulation.
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.node_count
    }

    /// Sends `payload` to `to` (latency/drops/partitions applied by the
    /// engine). Sending to self is allowed and goes through the queue like
    /// any other message.
    pub fn send(&mut self, to: NodeId, payload: M) {
        self.outbox.push(Action::Send { to, payload });
    }

    /// Sends `payload` to every *other* node.
    pub fn broadcast(&mut self, payload: M) {
        self.outbox.push(Action::Broadcast { payload });
    }

    /// Schedules a timer to fire on this node after `delay`.
    pub fn set_timer(&mut self, delay: SimTime, token: TimerToken) {
        self.outbox.push(Action::SetTimer { delay, token });
    }

    /// Stops the whole simulation after this callback (used by harnesses
    /// when a terminal condition is reached).
    pub fn halt(&mut self) {
        self.outbox.push(Action::Halt);
    }

    /// Draws a uniform `f64` in `[0, 1)` from the simulation's seeded RNG.
    pub fn random_f64(&mut self) -> f64 {
        self.rng.gen()
    }

    /// Draws a uniform integer in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    pub fn random_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "random_below requires a positive bound");
        self.rng.gen_range(0..bound)
    }
}

/// A protocol participant driven by the simulation.
///
/// All methods have no-op defaults except [`on_message`](Node::on_message);
/// implement the hooks the protocol needs. Heterogeneous simulations (e.g.
/// BFT replicas plus clients) wrap their roles in an enum implementing
/// `Node`, which keeps node state directly inspectable by harnesses.
pub trait Node {
    /// The message type this node exchanges.
    type Message;

    /// Called once, at simulation start (time 0), in node-id order.
    fn on_start(&mut self, ctx: &mut Context<'_, Self::Message>) {
        let _ = ctx;
    }

    /// Called when a message from `from` is delivered.
    fn on_message(
        &mut self,
        from: NodeId,
        msg: Self::Message,
        ctx: &mut Context<'_, Self::Message>,
    );

    /// Called when a timer set by this node fires.
    fn on_timer(&mut self, token: TimerToken, ctx: &mut Context<'_, Self::Message>) {
        let _ = (token, ctx);
    }

    /// Called when a fault is injected into this node (crash, compromise,
    /// recovery).
    fn on_fault(&mut self, fault: FaultEvent, ctx: &mut Context<'_, Self::Message>) {
        let _ = (fault, ctx);
    }
}

impl<T: Node + ?Sized> Node for Box<T> {
    type Message = T::Message;

    fn on_start(&mut self, ctx: &mut Context<'_, Self::Message>) {
        (**self).on_start(ctx);
    }

    fn on_message(
        &mut self,
        from: NodeId,
        msg: Self::Message,
        ctx: &mut Context<'_, Self::Message>,
    ) {
        (**self).on_message(from, msg, ctx);
    }

    fn on_timer(&mut self, token: TimerToken, ctx: &mut Context<'_, Self::Message>) {
        (**self).on_timer(token, ctx);
    }

    fn on_fault(&mut self, fault: FaultEvent, ctx: &mut Context<'_, Self::Message>) {
        (**self).on_fault(fault, ctx);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn node_id_basics() {
        let id = NodeId::new(3);
        assert_eq!(id.index(), 3);
        assert_eq!(id.to_string(), "n3");
        assert_eq!(NodeId::from(3usize), id);
        assert!(NodeId::new(1) < NodeId::new(2));
    }

    #[test]
    fn context_collects_actions() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut ctx: Context<'_, u8> = Context {
            now: SimTime::from_millis(5),
            id: NodeId::new(1),
            node_count: 4,
            rng: &mut rng,
            outbox: Vec::new(),
        };
        assert_eq!(ctx.now(), SimTime::from_millis(5));
        assert_eq!(ctx.id(), NodeId::new(1));
        assert_eq!(ctx.node_count(), 4);
        ctx.send(NodeId::new(2), 9);
        ctx.broadcast(7);
        ctx.set_timer(SimTime::from_millis(1), TimerToken::new(11));
        ctx.halt();
        assert_eq!(ctx.outbox.len(), 4);
    }

    #[test]
    fn context_randomness_is_deterministic_per_seed() {
        let draw = |seed: u64| {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut ctx: Context<'_, u8> = Context {
                now: SimTime::ZERO,
                id: NodeId::new(0),
                node_count: 1,
                rng: &mut rng,
                outbox: Vec::new(),
            };
            (ctx.random_f64(), ctx.random_below(100))
        };
        assert_eq!(draw(9), draw(9));
        assert_ne!(draw(9), draw(10));
    }

    #[test]
    #[should_panic(expected = "positive bound")]
    fn random_below_zero_panics() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut ctx: Context<'_, u8> = Context {
            now: SimTime::ZERO,
            id: NodeId::new(0),
            node_count: 1,
            rng: &mut rng,
            outbox: Vec::new(),
        };
        let _ = ctx.random_below(0);
    }

    #[test]
    fn boxed_nodes_delegate() {
        struct Probe {
            messages: usize,
        }
        impl Node for Probe {
            type Message = u8;
            fn on_message(&mut self, _f: NodeId, _m: u8, _c: &mut Context<'_, u8>) {
                self.messages += 1;
            }
        }
        let mut boxed: Box<Probe> = Box::new(Probe { messages: 0 });
        let mut rng = StdRng::seed_from_u64(0);
        let mut ctx = Context {
            now: SimTime::ZERO,
            id: NodeId::new(0),
            node_count: 1,
            rng: &mut rng,
            outbox: Vec::new(),
        };
        Node::on_message(&mut boxed, NodeId::new(0), 1, &mut ctx);
        Node::on_start(&mut boxed, &mut ctx);
        Node::on_timer(&mut boxed, TimerToken::new(0), &mut ctx);
        Node::on_fault(&mut boxed, FaultEvent::Crash, &mut ctx);
        assert_eq!(boxed.messages, 1);
    }
}
