//! Network configuration: latency, loss, partitions.

use serde::{Deserialize, Serialize};

use crate::latency::LatencyModel;
use crate::partition::PartitionWindow;

/// The network the simulation runs over.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NetworkConfig {
    /// Latency model applied to every message.
    pub latency: LatencyModel,
    /// Independent per-message drop probability in `[0, 1]`.
    pub drop_probability: f64,
    /// Scheduled partition windows.
    pub partitions: Vec<PartitionWindow>,
}

impl Default for NetworkConfig {
    /// A reliable 1 ms LAN with no partitions.
    fn default() -> Self {
        NetworkConfig {
            latency: LatencyModel::default(),
            drop_probability: 0.0,
            partitions: Vec::new(),
        }
    }
}

impl NetworkConfig {
    /// A reliable network with the given latency model.
    #[must_use]
    pub fn with_latency(latency: LatencyModel) -> Self {
        NetworkConfig {
            latency,
            ..NetworkConfig::default()
        }
    }

    /// Sets the drop probability (builder style).
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    #[must_use]
    pub fn drop_probability(mut self, p: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&p),
            "drop probability must be in [0,1]"
        );
        self.drop_probability = p;
        self
    }

    /// Adds a partition window (builder style).
    #[must_use]
    pub fn partition(mut self, window: PartitionWindow) -> Self {
        self.partitions.push(window);
        self
    }

    /// Whether the network allows `from → to` at time `t` (all active
    /// partition windows must allow the pair).
    #[must_use]
    pub fn allows(
        &self,
        from: crate::node::NodeId,
        to: crate::node::NodeId,
        t: fi_types::SimTime,
    ) -> bool {
        self.partitions
            .iter()
            .filter(|w| w.active_at(t))
            .all(|w| w.partition.allows(from, to))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::NodeId;
    use crate::partition::Partition;
    use fi_types::SimTime;

    #[test]
    fn default_is_reliable_lan() {
        let c = NetworkConfig::default();
        assert_eq!(c.drop_probability, 0.0);
        assert!(c.partitions.is_empty());
        assert!(c.allows(NodeId::new(0), NodeId::new(1), SimTime::ZERO));
    }

    #[test]
    fn builder_chain() {
        let c = NetworkConfig::with_latency(LatencyModel::Constant(SimTime::from_millis(5)))
            .drop_probability(0.1)
            .partition(PartitionWindow {
                from: SimTime::from_secs(1),
                until: SimTime::from_secs(2),
                partition: Partition::split_at(4, 2),
            });
        assert_eq!(c.drop_probability, 0.1);
        assert_eq!(c.partitions.len(), 1);
    }

    #[test]
    #[should_panic(expected = "must be in [0,1]")]
    fn rejects_bad_drop_probability() {
        let _ = NetworkConfig::default().drop_probability(1.5);
    }

    #[test]
    fn partition_window_gates_reachability() {
        let c = NetworkConfig::default().partition(PartitionWindow {
            from: SimTime::from_secs(1),
            until: SimTime::from_secs(2),
            partition: Partition::split_at(4, 2),
        });
        assert!(c.allows(NodeId::new(0), NodeId::new(3), SimTime::ZERO));
        assert!(!c.allows(NodeId::new(0), NodeId::new(3), SimTime::from_secs(1)));
        assert!(c.allows(NodeId::new(0), NodeId::new(1), SimTime::from_secs(1)));
        assert!(c.allows(NodeId::new(0), NodeId::new(3), SimTime::from_secs(2)));
    }

    #[test]
    fn overlapping_windows_must_all_allow() {
        let c = NetworkConfig::default()
            .partition(PartitionWindow {
                from: SimTime::ZERO,
                until: SimTime::from_secs(10),
                partition: Partition::split_at(4, 1),
            })
            .partition(PartitionWindow {
                from: SimTime::ZERO,
                until: SimTime::from_secs(10),
                partition: Partition::split_at(4, 3),
            });
        // 1 -> 2 allowed by the first window (both right of boundary 1) but
        // blocked by the second (2 < 3 <= 3).
        assert!(!c.allows(NodeId::new(1), NodeId::new(3), SimTime::from_secs(5)));
        assert!(c.allows(NodeId::new(1), NodeId::new(2), SimTime::from_secs(5)));
    }
}
