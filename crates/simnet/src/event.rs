//! Queue entries: messages, timers, and injected faults, ordered by
//! `(time, sequence)` for full determinism.

use core::cmp::Ordering;
use core::fmt;

use fi_types::SimTime;
use serde::{Deserialize, Serialize};

use crate::node::NodeId;

/// An opaque timer identifier chosen by the node that sets the timer.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
#[serde(transparent)]
pub struct TimerToken(u64);

impl TimerToken {
    /// Creates a token.
    #[must_use]
    pub const fn new(raw: u64) -> Self {
        TimerToken(raw)
    }

    /// The raw token value.
    #[must_use]
    pub const fn value(self) -> u64 {
        self.0
    }
}

impl fmt::Display for TimerToken {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "timer#{}", self.0)
    }
}

/// A fault injected into a node — the simulator-level expression of the
/// paper's threat model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FaultEvent {
    /// The node stops participating (crash fault; Remark 1's hybrid model).
    Crash,
    /// The node is compromised and behaves arbitrarily from now on. The
    /// `flavor` selects a Byzantine behaviour in the protocol layer; the
    /// simulator itself attaches no meaning to it.
    Compromise {
        /// Protocol-defined behaviour selector.
        flavor: u8,
    },
    /// A previously compromised/crashed node is recovered (proactive
    /// recovery, §III-A's proactive-security pointer).
    Recover,
}

/// What is scheduled to happen.
#[derive(Debug, Clone)]
pub(crate) enum EventKind<M> {
    Deliver {
        from: NodeId,
        to: NodeId,
        payload: M,
    },
    Timer {
        node: NodeId,
        token: TimerToken,
    },
    Fault {
        node: NodeId,
        fault: FaultEvent,
    },
}

/// A queue entry: an event at a time, with a monotone sequence number as a
/// deterministic tiebreaker.
pub(crate) struct Scheduled<M> {
    pub at: SimTime,
    pub seq: u64,
    pub kind: EventKind<M>,
}

impl<M> PartialEq for Scheduled<M> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}

impl<M> Eq for Scheduled<M> {}

impl<M> PartialOrd for Scheduled<M> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<M> Ord for Scheduled<M> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse order so BinaryHeap pops the earliest event first.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BinaryHeap;

    fn sched(at_us: u64, seq: u64) -> Scheduled<u8> {
        Scheduled {
            at: SimTime::from_micros(at_us),
            seq,
            kind: EventKind::Timer {
                node: NodeId::new(0),
                token: TimerToken::new(0),
            },
        }
    }

    #[test]
    fn heap_pops_in_time_then_seq_order() {
        let mut heap = BinaryHeap::new();
        heap.push(sched(20, 0));
        heap.push(sched(10, 2));
        heap.push(sched(10, 1));
        heap.push(sched(5, 9));
        let order: Vec<(u64, u64)> = std::iter::from_fn(|| heap.pop())
            .map(|s| (s.at.as_micros(), s.seq))
            .collect();
        assert_eq!(order, vec![(5, 9), (10, 1), (10, 2), (20, 0)]);
    }

    #[test]
    fn timer_token_round_trip() {
        let t = TimerToken::new(42);
        assert_eq!(t.value(), 42);
        assert_eq!(t.to_string(), "timer#42");
    }

    #[test]
    fn fault_event_variants_are_distinct() {
        assert_ne!(FaultEvent::Crash, FaultEvent::Compromise { flavor: 0 });
        assert_ne!(
            FaultEvent::Compromise { flavor: 0 },
            FaultEvent::Compromise { flavor: 1 }
        );
        assert_ne!(FaultEvent::Recover, FaultEvent::Crash);
    }
}
