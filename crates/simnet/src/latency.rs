//! Message latency models.

use fi_types::SimTime;
use rand::rngs::StdRng;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// How long a message takes from send to delivery.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum LatencyModel {
    /// Every message takes exactly this long.
    Constant(SimTime),
    /// Uniform in `[min, max]`.
    Uniform {
        /// Minimum latency.
        min: SimTime,
        /// Maximum latency.
        max: SimTime,
    },
    /// Exponential with the given mean, shifted by a floor (propagation
    /// delay); the classic WAN model.
    Exponential {
        /// Minimum (floor) latency added to every draw.
        floor: SimTime,
        /// Mean of the exponential component.
        mean: SimTime,
    },
}

impl Default for LatencyModel {
    /// 1 ms constant — a fast LAN.
    fn default() -> Self {
        LatencyModel::Constant(SimTime::from_millis(1))
    }
}

impl LatencyModel {
    /// Samples one latency.
    ///
    /// # Panics
    ///
    /// Panics if a `Uniform` model has `min > max`.
    #[must_use]
    pub fn sample(&self, rng: &mut StdRng) -> SimTime {
        match *self {
            LatencyModel::Constant(t) => t,
            LatencyModel::Uniform { min, max } => {
                assert!(min <= max, "uniform latency requires min <= max");
                if min == max {
                    min
                } else {
                    SimTime::from_micros(rng.gen_range(min.as_micros()..=max.as_micros()))
                }
            }
            LatencyModel::Exponential { floor, mean } => {
                let u: f64 = rng.gen_range(f64::EPSILON..1.0);
                let exp_micros = -(u.ln()) * mean.as_micros() as f64;
                floor.saturating_add(SimTime::from_micros(exp_micros as u64))
            }
        }
    }

    /// A lower bound on any sample from this model.
    #[must_use]
    pub fn min_latency(&self) -> SimTime {
        match *self {
            LatencyModel::Constant(t) => t,
            LatencyModel::Uniform { min, .. } => min,
            LatencyModel::Exponential { floor, .. } => floor,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn constant_always_same() {
        let mut rng = StdRng::seed_from_u64(0);
        let m = LatencyModel::Constant(SimTime::from_millis(3));
        for _ in 0..10 {
            assert_eq!(m.sample(&mut rng), SimTime::from_millis(3));
        }
    }

    #[test]
    fn uniform_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        let m = LatencyModel::Uniform {
            min: SimTime::from_millis(2),
            max: SimTime::from_millis(8),
        };
        for _ in 0..1000 {
            let s = m.sample(&mut rng);
            assert!(s >= SimTime::from_millis(2) && s <= SimTime::from_millis(8));
        }
    }

    #[test]
    fn uniform_degenerate_interval() {
        let mut rng = StdRng::seed_from_u64(1);
        let m = LatencyModel::Uniform {
            min: SimTime::from_millis(5),
            max: SimTime::from_millis(5),
        };
        assert_eq!(m.sample(&mut rng), SimTime::from_millis(5));
    }

    #[test]
    #[should_panic(expected = "min <= max")]
    fn uniform_rejects_inverted() {
        let mut rng = StdRng::seed_from_u64(1);
        let m = LatencyModel::Uniform {
            min: SimTime::from_millis(9),
            max: SimTime::from_millis(1),
        };
        let _ = m.sample(&mut rng);
    }

    #[test]
    fn exponential_respects_floor_and_mean() {
        let mut rng = StdRng::seed_from_u64(2);
        let m = LatencyModel::Exponential {
            floor: SimTime::from_millis(10),
            mean: SimTime::from_millis(20),
        };
        let n = 20_000;
        let mut total = 0u64;
        for _ in 0..n {
            let s = m.sample(&mut rng);
            assert!(s >= SimTime::from_millis(10));
            total += s.as_micros() - 10_000;
        }
        let mean = total as f64 / n as f64;
        assert!((mean - 20_000.0).abs() < 1_000.0, "empirical mean {mean}");
    }

    #[test]
    fn sampling_is_deterministic_per_seed() {
        let m = LatencyModel::Exponential {
            floor: SimTime::ZERO,
            mean: SimTime::from_millis(5),
        };
        let mut a = StdRng::seed_from_u64(3);
        let mut b = StdRng::seed_from_u64(3);
        for _ in 0..100 {
            assert_eq!(m.sample(&mut a), m.sample(&mut b));
        }
    }

    #[test]
    fn min_latency_accessor() {
        assert_eq!(
            LatencyModel::default().min_latency(),
            SimTime::from_millis(1)
        );
        assert_eq!(
            LatencyModel::Exponential {
                floor: SimTime::from_millis(7),
                mean: SimTime::from_millis(1)
            }
            .min_latency(),
            SimTime::from_millis(7)
        );
    }
}
