//! The simulation engine: event loop, network application, fault
//! injection.

use std::collections::BinaryHeap;

use fi_types::SimTime;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::event::{EventKind, FaultEvent, Scheduled};
use crate::network::NetworkConfig;
use crate::node::{Action, Context, Node, NodeId};
use crate::trace::TraceStats;

/// A deterministic discrete-event simulation over nodes of type `N`.
///
/// All randomness (latency samples, drops, node-requested randomness) flows
/// from the single seed given to [`Simulation::new`]; two runs with the same
/// seed, nodes, and schedule produce identical traces.
pub struct Simulation<N: Node> {
    nodes: Vec<N>,
    queue: BinaryHeap<Scheduled<N::Message>>,
    config: NetworkConfig,
    rng: StdRng,
    now: SimTime,
    seq: u64,
    started: bool,
    halted: bool,
    stats: TraceStats,
}

impl<N: Node> Simulation<N>
where
    N::Message: Clone,
{
    /// Creates an empty simulation with a network and a seed.
    #[must_use]
    pub fn new(config: NetworkConfig, seed: u64) -> Self {
        Simulation {
            nodes: Vec::new(),
            queue: BinaryHeap::new(),
            config,
            rng: StdRng::seed_from_u64(seed),
            now: SimTime::ZERO,
            seq: 0,
            started: false,
            halted: false,
            stats: TraceStats::default(),
        }
    }

    /// Adds a node, returning its id. Nodes must be added before the first
    /// `run_*` call.
    ///
    /// # Panics
    ///
    /// Panics if the simulation has already started.
    pub fn add_node(&mut self, node: N) -> NodeId {
        assert!(
            !self.started,
            "nodes must be added before the simulation starts"
        );
        let id = NodeId::new(self.nodes.len());
        self.nodes.push(node);
        self.stats.ensure_nodes(self.nodes.len());
        id
    }

    /// The current simulation time.
    #[must_use]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of nodes.
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Immutable access to a node's state (for harness assertions).
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    #[must_use]
    pub fn node(&self, id: NodeId) -> &N {
        &self.nodes[id.index()]
    }

    /// Mutable access to a node's state.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    #[must_use]
    pub fn node_mut(&mut self, id: NodeId) -> &mut N {
        &mut self.nodes[id.index()]
    }

    /// All nodes, in id order.
    #[must_use]
    pub fn nodes(&self) -> &[N] {
        &self.nodes
    }

    /// The accumulated statistics.
    #[must_use]
    pub fn stats(&self) -> &TraceStats {
        &self.stats
    }

    /// Whether a `halt()` was requested by a node.
    #[must_use]
    pub fn halted(&self) -> bool {
        self.halted
    }

    fn push(&mut self, at: SimTime, kind: EventKind<N::Message>) {
        let seq = self.seq;
        self.seq += 1;
        self.queue.push(Scheduled { at, seq, kind });
    }

    /// Schedules a fault to be injected into `node` at absolute time `at`.
    /// This is how correlated compromise is expressed: the fault-injection
    /// harness schedules one `Compromise` per replica sharing the
    /// vulnerable component, all at the same instant.
    pub fn schedule_fault(&mut self, at: SimTime, node: NodeId, fault: FaultEvent) {
        self.push(at, EventKind::Fault { node, fault });
    }

    /// Injects an external message (e.g. a client request driven by the
    /// harness) for delivery at absolute time `at`, bypassing the latency
    /// model but not recorded as network traffic.
    pub fn post(&mut self, at: SimTime, from: NodeId, to: NodeId, payload: N::Message) {
        self.push(at, EventKind::Deliver { from, to, payload });
    }

    fn start_if_needed(&mut self) {
        if self.started {
            return;
        }
        self.started = true;
        for i in 0..self.nodes.len() {
            self.dispatch_start(NodeId::new(i));
        }
    }

    fn dispatch_start(&mut self, id: NodeId) {
        // Disjoint field borrows: the node and the context (which holds the
        // RNG) are separate fields of `self`.
        let Simulation {
            nodes, rng, now, ..
        } = self;
        let node_count = nodes.len();
        let mut ctx = Context {
            now: *now,
            id,
            node_count,
            rng,
            outbox: Vec::new(),
        };
        nodes[id.index()].on_start(&mut ctx);
        let outbox = ctx.outbox;
        self.apply_outbox(id, outbox);
    }

    fn dispatch(&mut self, id: NodeId, kind: EventKind<N::Message>) {
        let Simulation {
            nodes, rng, now, ..
        } = self;
        let node_count = nodes.len();
        let mut ctx = Context {
            now: *now,
            id,
            node_count,
            rng,
            outbox: Vec::new(),
        };
        let node = &mut nodes[id.index()];
        match kind {
            EventKind::Deliver { from, payload, .. } => {
                node.on_message(from, payload, &mut ctx);
            }
            EventKind::Timer { token, .. } => {
                node.on_timer(token, &mut ctx);
            }
            EventKind::Fault { fault, .. } => {
                node.on_fault(fault, &mut ctx);
            }
        }
        let outbox = ctx.outbox;
        self.apply_outbox(id, outbox);
    }

    fn apply_outbox(&mut self, from: NodeId, outbox: Vec<Action<N::Message>>) {
        for action in outbox {
            match action {
                Action::Send { to, payload } => self.route(from, to, payload),
                Action::Broadcast { payload } => {
                    for i in 0..self.nodes.len() {
                        let to = NodeId::new(i);
                        if to != from {
                            self.route(from, to, payload.clone());
                        }
                    }
                }
                Action::SetTimer { delay, token } => {
                    let at = self.now.saturating_add(delay);
                    self.push(at, EventKind::Timer { node: from, token });
                }
                Action::Halt => self.halted = true,
            }
        }
    }

    fn route(&mut self, from: NodeId, to: NodeId, payload: N::Message) {
        self.stats.record_sent(from);
        if !self.config.allows(from, to, self.now) {
            self.stats.record_blocked();
            return;
        }
        if self.config.drop_probability > 0.0 {
            let roll: f64 = self.rng.gen();
            if roll < self.config.drop_probability {
                self.stats.record_dropped();
                return;
            }
        }
        let latency = self.config.latency.sample(&mut self.rng);
        let at = self.now.saturating_add(latency);
        self.push(at, EventKind::Deliver { from, to, payload });
    }

    /// Runs until the queue is exhausted, a node halts, or `deadline` is
    /// reached; returns the number of events processed. Time advances to
    /// `deadline` even if the queue drains earlier.
    pub fn run_until(&mut self, deadline: SimTime) -> u64 {
        self.start_if_needed();
        let mut processed = 0;
        while !self.halted {
            let Some(head) = self.queue.peek() else { break };
            if head.at > deadline {
                break;
            }
            let event = self.queue.pop().expect("peeked entry exists");
            self.now = event.at;
            let (id, record) = match &event.kind {
                EventKind::Deliver { to, .. } => (*to, 0u8),
                EventKind::Timer { node, .. } => (*node, 1),
                EventKind::Fault { node, .. } => (*node, 2),
            };
            match record {
                0 => self.stats.record_delivered(id),
                1 => self.stats.record_timer(),
                _ => self.stats.record_fault(),
            }
            self.dispatch(id, event.kind);
            processed += 1;
        }
        if self.now < deadline {
            self.now = deadline;
        }
        processed
    }

    /// Runs until the event queue is empty (or a node halts), up to the
    /// safety cap of `max_events`; returns the number processed. Use when
    /// the protocol quiesces on its own (no periodic timers).
    pub fn run_to_quiescence(&mut self, max_events: u64) -> u64 {
        self.start_if_needed();
        let mut processed = 0;
        while processed < max_events && !self.halted {
            let Some(event) = self.queue.pop() else { break };
            self.now = event.at;
            let (id, record) = match &event.kind {
                EventKind::Deliver { to, .. } => (*to, 0u8),
                EventKind::Timer { node, .. } => (*node, 1),
                EventKind::Fault { node, .. } => (*node, 2),
            };
            match record {
                0 => self.stats.record_delivered(id),
                1 => self.stats.record_timer(),
                _ => self.stats.record_fault(),
            }
            self.dispatch(id, event.kind);
            processed += 1;
        }
        processed
    }

    /// Number of events currently queued (in flight).
    #[must_use]
    pub fn pending_events(&self) -> usize {
        self.queue.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::TimerToken;
    use crate::latency::LatencyModel;
    use crate::partition::{Partition, PartitionWindow};

    /// A node that counts pings and replies with pongs.
    #[derive(Debug, Default)]
    struct PingPong {
        pings: u32,
        pongs: u32,
        crashed: bool,
    }

    #[derive(Debug, Clone, Copy, PartialEq)]
    enum Msg {
        Ping,
        Pong,
    }

    impl Node for PingPong {
        type Message = Msg;

        fn on_start(&mut self, ctx: &mut Context<'_, Msg>) {
            if ctx.id() == NodeId::new(0) {
                ctx.broadcast(Msg::Ping);
            }
        }

        fn on_message(&mut self, from: NodeId, msg: Msg, ctx: &mut Context<'_, Msg>) {
            if self.crashed {
                return;
            }
            match msg {
                Msg::Ping => {
                    self.pings += 1;
                    ctx.send(from, Msg::Pong);
                }
                Msg::Pong => self.pongs += 1,
            }
        }

        fn on_timer(&mut self, _token: TimerToken, ctx: &mut Context<'_, Msg>) {
            ctx.broadcast(Msg::Ping);
        }

        fn on_fault(&mut self, fault: FaultEvent, _ctx: &mut Context<'_, Msg>) {
            if fault == FaultEvent::Crash {
                self.crashed = true;
            }
        }
    }

    fn build(n: usize, config: NetworkConfig, seed: u64) -> Simulation<PingPong> {
        let mut sim = Simulation::new(config, seed);
        for _ in 0..n {
            sim.add_node(PingPong::default());
        }
        sim
    }

    #[test]
    fn ping_pong_round_trip() {
        let mut sim = build(4, NetworkConfig::default(), 1);
        sim.run_until(SimTime::from_secs(1));
        // Node 0 pinged 3 peers; each replied.
        assert_eq!(sim.node(NodeId::new(0)).pongs, 3);
        for i in 1..4 {
            assert_eq!(sim.node(NodeId::new(i)).pings, 1);
        }
        assert_eq!(sim.stats().sent(), 6);
        assert_eq!(sim.stats().delivered(), 6);
        assert_eq!(sim.now(), SimTime::from_secs(1));
    }

    #[test]
    fn determinism_same_seed_same_trace() {
        let config = NetworkConfig::with_latency(LatencyModel::Exponential {
            floor: SimTime::from_millis(1),
            mean: SimTime::from_millis(10),
        })
        .drop_probability(0.2);
        let run = |seed| {
            let mut sim = build(5, config.clone(), seed);
            sim.run_until(SimTime::from_secs(2));
            (
                sim.stats().delivered(),
                sim.stats().dropped(),
                sim.node(NodeId::new(0)).pongs,
            )
        };
        assert_eq!(run(7), run(7));
    }

    #[test]
    fn different_seeds_differ() {
        let config = NetworkConfig::default().drop_probability(0.5);
        let outcomes: Vec<u64> = (0..8)
            .map(|seed| {
                let mut sim = build(6, config.clone(), seed);
                sim.run_until(SimTime::from_secs(1));
                sim.stats().dropped()
            })
            .collect();
        assert!(
            outcomes.windows(2).any(|w| w[0] != w[1]),
            "all seeds gave identical drops: {outcomes:?}"
        );
    }

    #[test]
    fn drops_reduce_delivery() {
        let mut sim = build(10, NetworkConfig::default().drop_probability(1.0), 3);
        sim.run_until(SimTime::from_secs(1));
        assert_eq!(sim.stats().delivered(), 0);
        assert_eq!(sim.stats().dropped(), 9);
    }

    #[test]
    fn partitions_block_messages() {
        let config = NetworkConfig::default().partition(PartitionWindow {
            from: SimTime::ZERO,
            until: SimTime::from_secs(10),
            partition: Partition::split_at(4, 1),
        });
        let mut sim = build(4, config, 4);
        sim.run_until(SimTime::from_secs(1));
        // Node 0 is alone: all 3 pings blocked.
        assert_eq!(sim.stats().blocked_by_partition(), 3);
        assert_eq!(sim.stats().delivered(), 0);
    }

    #[test]
    fn fault_injection_crashes_node() {
        let mut sim = build(3, NetworkConfig::default(), 5);
        sim.schedule_fault(SimTime::from_micros(1), NodeId::new(1), FaultEvent::Crash);
        sim.run_until(SimTime::from_secs(1));
        // Node 1 crashed before the ping arrived (ping latency 1ms > 1us).
        assert!(sim.node(NodeId::new(1)).crashed);
        assert_eq!(sim.node(NodeId::new(1)).pings, 0);
        // Node 2 still replied.
        assert_eq!(sim.node(NodeId::new(0)).pongs, 1);
        assert_eq!(sim.stats().faults_injected(), 1);
    }

    #[test]
    fn timers_fire_and_count() {
        let mut sim = build(2, NetworkConfig::default(), 6);
        sim.run_until(SimTime::from_millis(1));
        // Manually set a timer through the node API by posting a fault-free
        // path: use post to trigger on_message then timer? Simplest: drive
        // a timer via node 0's on_timer by scheduling through the queue.
        // Instead: set a timer inside on_start is not done by PingPong, so
        // exercise timers through a dedicated node below.
        struct TimerNode {
            fired: u32,
        }
        impl Node for TimerNode {
            type Message = ();
            fn on_start(&mut self, ctx: &mut Context<'_, ()>) {
                ctx.set_timer(SimTime::from_millis(10), TimerToken::new(1));
            }
            fn on_message(&mut self, _f: NodeId, _m: (), _c: &mut Context<'_, ()>) {}
            fn on_timer(&mut self, token: TimerToken, ctx: &mut Context<'_, ()>) {
                assert_eq!(token, TimerToken::new(1));
                self.fired += 1;
                if self.fired < 3 {
                    ctx.set_timer(SimTime::from_millis(10), TimerToken::new(1));
                }
            }
        }
        let mut tsim: Simulation<TimerNode> = Simulation::new(NetworkConfig::default(), 0);
        tsim.add_node(TimerNode { fired: 0 });
        tsim.run_until(SimTime::from_secs(1));
        assert_eq!(tsim.node(NodeId::new(0)).fired, 3);
        assert_eq!(tsim.stats().timers_fired(), 3);
    }

    #[test]
    fn post_injects_external_messages() {
        let mut sim = build(2, NetworkConfig::default(), 8);
        sim.post(
            SimTime::from_millis(5),
            NodeId::new(1),
            NodeId::new(0),
            Msg::Pong,
        );
        sim.run_until(SimTime::from_secs(1));
        // 1 posted pong + 1 pong from the regular ping exchange.
        assert_eq!(sim.node(NodeId::new(0)).pongs, 2);
    }

    #[test]
    fn halt_stops_processing() {
        struct Halter;
        impl Node for Halter {
            type Message = u8;
            fn on_start(&mut self, ctx: &mut Context<'_, u8>) {
                ctx.send(ctx.id(), 1);
            }
            fn on_message(&mut self, _f: NodeId, _m: u8, ctx: &mut Context<'_, u8>) {
                ctx.send(ctx.id(), 1);
                ctx.halt();
            }
        }
        let mut sim: Simulation<Halter> = Simulation::new(NetworkConfig::default(), 0);
        sim.add_node(Halter);
        let processed = sim.run_until(SimTime::from_secs(100));
        assert!(sim.halted());
        assert_eq!(processed, 1);
        assert_eq!(sim.pending_events(), 1);
    }

    #[test]
    fn run_to_quiescence_drains_queue() {
        let mut sim = build(3, NetworkConfig::default(), 9);
        let processed = sim.run_to_quiescence(1_000);
        assert!(processed > 0);
        assert_eq!(sim.pending_events(), 0);
    }

    #[test]
    fn run_to_quiescence_respects_cap() {
        // Two nodes ping-pong forever; the cap must stop the run.
        struct Forever;
        impl Node for Forever {
            type Message = u8;
            fn on_start(&mut self, ctx: &mut Context<'_, u8>) {
                if ctx.id() == NodeId::new(0) {
                    ctx.send(NodeId::new(1), 0);
                }
            }
            fn on_message(&mut self, from: NodeId, _m: u8, ctx: &mut Context<'_, u8>) {
                ctx.send(from, 0);
            }
        }
        let mut sim: Simulation<Forever> = Simulation::new(NetworkConfig::default(), 0);
        sim.add_node(Forever);
        sim.add_node(Forever);
        assert_eq!(sim.run_to_quiescence(50), 50);
    }

    #[test]
    #[should_panic(expected = "before the simulation starts")]
    fn add_node_after_start_panics() {
        let mut sim = build(2, NetworkConfig::default(), 0);
        sim.run_until(SimTime::from_millis(1));
        sim.add_node(PingPong::default());
    }

    #[test]
    fn deadline_advances_clock_without_events() {
        let mut sim: Simulation<PingPong> = Simulation::new(NetworkConfig::default(), 0);
        sim.add_node(PingPong::default());
        sim.run_until(SimTime::from_secs(5));
        assert_eq!(sim.now(), SimTime::from_secs(5));
    }
}
