//! # `fi-simnet` — a deterministic discrete-event network simulator
//!
//! Both consensus stacks in this workspace (`fi-bft`, `fi-nakamoto`) run on
//! this simulator rather than on a real async runtime. That is a deliberate
//! substitution (DESIGN.md §3): the paper's claims are about *safety under
//! correlated compromise*, and a seeded discrete-event simulation makes
//! every experiment reproducible bit-for-bit while still exercising message
//! reordering, loss, latency variation, and partitions.
//!
//! ## Model
//!
//! * A [`Simulation`] owns a set of [`Node`]s (trait objects over a message
//!   type `M`) and an event queue ordered by `(time, sequence)`.
//! * Nodes interact with the world only through a [`Context`]: sending
//!   messages, broadcasting, setting timers, reading the clock, drawing
//!   randomness. The engine applies the [`NetworkConfig`] (latency model,
//!   drop probability, partitions) to every send.
//! * Faults are injected by scheduling [`FaultEvent`]s (crash /
//!   Byzantine-compromise); the node's `on_fault` hook decides what the
//!   compromise means for its protocol (in `fi-bft` it swaps in a Byzantine
//!   behaviour — the paper's "one vulnerability flips all replicas sharing
//!   the component").
//!
//! ## Example
//!
//! ```
//! use fi_simnet::{Context, Node, NodeId, Simulation, NetworkConfig};
//! use fi_types::SimTime;
//!
//! struct Echo { heard: usize }
//! impl Node for Echo {
//!     type Message = u32;
//!     fn on_start(&mut self, ctx: &mut Context<'_, u32>) {
//!         if ctx.id() == NodeId::new(0) {
//!             ctx.broadcast(7);
//!         }
//!     }
//!     fn on_message(&mut self, _from: NodeId, msg: u32, _ctx: &mut Context<'_, u32>) {
//!         assert_eq!(msg, 7);
//!         self.heard += 1;
//!     }
//! }
//!
//! let mut sim: Simulation<Echo> = Simulation::new(NetworkConfig::default(), 42);
//! for _ in 0..3 {
//!     sim.add_node(Echo { heard: 0 });
//! }
//! sim.run_until(SimTime::from_secs(1));
//! // Node 0 broadcast to the other two.
//! assert_eq!(sim.stats().delivered(), 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod engine;
pub mod event;
pub mod latency;
pub mod network;
pub mod node;
pub mod partition;
pub mod population;
pub mod trace;

pub use engine::Simulation;
pub use event::{FaultEvent, TimerToken};
pub use latency::LatencyModel;
pub use network::NetworkConfig;
pub use node::{Context, Node, NodeId};
pub use partition::Partition;
pub use population::{ClientPopulation, PopulationConfig, TickTraffic};
pub use trace::TraceStats;
