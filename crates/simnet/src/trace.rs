//! Simulation statistics: message counts per outcome and per node.

use serde::{Deserialize, Serialize};

use crate::node::NodeId;

/// Counters accumulated while a simulation runs.
///
/// Message-complexity experiments (the Proposition-3 overhead trade-off)
/// read `sent`/`delivered` after a run.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceStats {
    sent: u64,
    delivered: u64,
    dropped: u64,
    blocked_by_partition: u64,
    timers_fired: u64,
    faults_injected: u64,
    per_node_sent: Vec<u64>,
    per_node_delivered: Vec<u64>,
}

impl TraceStats {
    pub(crate) fn ensure_nodes(&mut self, n: usize) {
        if self.per_node_sent.len() < n {
            self.per_node_sent.resize(n, 0);
            self.per_node_delivered.resize(n, 0);
        }
    }

    pub(crate) fn record_sent(&mut self, from: NodeId) {
        self.sent += 1;
        if let Some(c) = self.per_node_sent.get_mut(from.index()) {
            *c += 1;
        }
    }

    pub(crate) fn record_delivered(&mut self, to: NodeId) {
        self.delivered += 1;
        if let Some(c) = self.per_node_delivered.get_mut(to.index()) {
            *c += 1;
        }
    }

    pub(crate) fn record_dropped(&mut self) {
        self.dropped += 1;
    }

    pub(crate) fn record_blocked(&mut self) {
        self.blocked_by_partition += 1;
    }

    pub(crate) fn record_timer(&mut self) {
        self.timers_fired += 1;
    }

    pub(crate) fn record_fault(&mut self) {
        self.faults_injected += 1;
    }

    /// Messages handed to the network.
    #[must_use]
    pub fn sent(&self) -> u64 {
        self.sent
    }

    /// Messages delivered to a node.
    #[must_use]
    pub fn delivered(&self) -> u64 {
        self.delivered
    }

    /// Messages dropped by the loss model.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Messages blocked by an active partition.
    #[must_use]
    pub fn blocked_by_partition(&self) -> u64 {
        self.blocked_by_partition
    }

    /// Timers fired.
    #[must_use]
    pub fn timers_fired(&self) -> u64 {
        self.timers_fired
    }

    /// Faults injected.
    #[must_use]
    pub fn faults_injected(&self) -> u64 {
        self.faults_injected
    }

    /// Messages sent by `node`.
    #[must_use]
    pub fn sent_by(&self, node: NodeId) -> u64 {
        self.per_node_sent.get(node.index()).copied().unwrap_or(0)
    }

    /// Messages delivered to `node`.
    #[must_use]
    pub fn delivered_to(&self, node: NodeId) -> u64 {
        self.per_node_delivered
            .get(node.index())
            .copied()
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let mut s = TraceStats::default();
        s.ensure_nodes(2);
        s.record_sent(NodeId::new(0));
        s.record_sent(NodeId::new(0));
        s.record_delivered(NodeId::new(1));
        s.record_dropped();
        s.record_blocked();
        s.record_timer();
        s.record_fault();
        assert_eq!(s.sent(), 2);
        assert_eq!(s.delivered(), 1);
        assert_eq!(s.dropped(), 1);
        assert_eq!(s.blocked_by_partition(), 1);
        assert_eq!(s.timers_fired(), 1);
        assert_eq!(s.faults_injected(), 1);
        assert_eq!(s.sent_by(NodeId::new(0)), 2);
        assert_eq!(s.delivered_to(NodeId::new(1)), 1);
        assert_eq!(s.sent_by(NodeId::new(9)), 0);
    }

    #[test]
    fn conservation_sent_equals_outcomes() {
        // The engine maintains: sent = delivered + dropped + blocked +
        // in-flight. With everything resolved, the identity is testable at
        // the stats level too.
        let mut s = TraceStats::default();
        s.ensure_nodes(1);
        for _ in 0..5 {
            s.record_sent(NodeId::new(0));
        }
        for _ in 0..3 {
            s.record_delivered(NodeId::new(0));
        }
        s.record_dropped();
        s.record_blocked();
        assert_eq!(
            s.sent(),
            s.delivered() + s.dropped() + s.blocked_by_partition()
        );
    }
}
