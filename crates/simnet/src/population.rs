//! A deterministic synthetic client population: the fleet-scale traffic
//! model that drives the serving layer.
//!
//! Real attestation fleets are not uniform — a small set of busy devices
//! (flaky hardware, CI farms, devices behind aggressive power management)
//! produces most of the churn, and load swings with the day. This module
//! models both with a **seeded, sequential** generator so a scenario like
//! "2 million devices, Zipf churn, epoch every 10 s" is a pure function of
//! its [`PopulationConfig`]: every run of the same config emits the
//! byte-identical request stream, which is what lets the serving layer's
//! end-state hash be compared across runs, thread schedules, and shard
//! counts.
//!
//! * **Zipf device skew** — churn picks devices by rank-`s` Zipf: device
//!   rank `r` is drawn with probability ∝ `1/r^s`. The sampler walks a
//!   precomputed cumulative table with a binary search, so a draw is
//!   O(log n) with no floating-point accumulation order dependence.
//! * **Diurnal load curve** — the per-tick op budget is the configured
//!   mean modulated by a sinusoid: `mean · (1 + A·sin(2π·t/period))`,
//!   rounded to an integer op count. Amplitude `A = 0` (or period `0`)
//!   gives flat load.
//! * **Op mix** — per-mille thresholds split churn into re-attestations,
//!   attestation failures ([`ChurnOp::Unattested`]) and departures
//!   ([`ChurnOp::Deregister`]); deregistering an absent device is
//!   idempotent in the registry, so the mix needs no per-device state.
//!
//! The generator is a *stream*: call [`ClientPopulation::registration_wave`]
//! once, then [`ClientPopulation::next_tick`] in tick order. Determinism is
//! per call sequence — two populations with the same config that make the
//! same calls in the same order see identical traffic.

use fi_attest::ChurnOp;
use fi_types::{sha256, Digest, ReplicaId, VotingPower};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Shape of a synthetic fleet's traffic. See the module docs for the
/// model; construct with [`PopulationConfig::new`] and refine with the
/// builder methods.
#[derive(Debug, Clone, PartialEq)]
pub struct PopulationConfig {
    /// Fleet size: device ids `0..devices`.
    pub devices: u64,
    /// Distinct firmware/config measurements across the fleet (devices
    /// attest to `measurement(id % measurements)`-style small pools, as
    /// real fleets run few firmware versions).
    pub measurements: usize,
    /// Zipf exponent `s` for device selection; `0.0` = uniform.
    pub zipf_s: f64,
    /// Mean churn ops per tick (the flat-load baseline).
    pub mean_ops_per_tick: u64,
    /// Diurnal amplitude `A` in `[0, 1]`: peak load is `(1+A)·mean`,
    /// trough `(1-A)·mean`.
    pub diurnal_amplitude: f64,
    /// Ticks per diurnal cycle; `0` disables the curve.
    pub diurnal_period: u64,
    /// Ops per submitted request (client-side batch size).
    pub ops_per_request: usize,
    /// Per-mille of churn ops that are [`ChurnOp::Unattested`] reports.
    pub unattested_permille: u32,
    /// Per-mille of churn ops that are [`ChurnOp::Deregister`]s; the
    /// remainder (to 1000) are re-attestations.
    pub deregister_permille: u32,
    /// Upper bound (exclusive) for per-device voting power draws.
    pub max_power: u64,
    /// RNG seed; the entire stream is a pure function of this config.
    pub seed: u64,
}

impl PopulationConfig {
    /// A population of `devices` devices emitting `mean_ops_per_tick`
    /// churn ops per tick, with the default skew (Zipf `s = 1.1`), a
    /// ±30 % diurnal curve over 100 ticks, 32-op requests, and a
    /// 10 % / 20 % unattested/deregister mix.
    #[must_use]
    pub fn new(devices: u64, mean_ops_per_tick: u64) -> Self {
        PopulationConfig {
            devices,
            measurements: 12,
            zipf_s: 1.1,
            mean_ops_per_tick,
            diurnal_amplitude: 0.3,
            diurnal_period: 100,
            ops_per_request: 32,
            unattested_permille: 100,
            deregister_permille: 200,
            max_power: 1_000,
            seed: 0xF1EE7,
        }
    }

    /// Sets the Zipf exponent.
    #[must_use]
    pub fn with_zipf(mut self, s: f64) -> Self {
        self.zipf_s = s;
        self
    }

    /// Sets the diurnal curve (`amplitude` in `[0,1]`, `period` in ticks).
    #[must_use]
    pub fn with_diurnal(mut self, amplitude: f64, period: u64) -> Self {
        self.diurnal_amplitude = amplitude;
        self.diurnal_period = period;
        self
    }

    /// Sets the client-side request batch size.
    #[must_use]
    pub fn with_ops_per_request(mut self, ops: usize) -> Self {
        self.ops_per_request = ops.max(1);
        self
    }

    /// Sets the RNG seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

/// One tick's generated traffic: the requests clients submitted, in
/// submission order.
#[derive(Debug, Clone)]
pub struct TickTraffic {
    /// The tick this traffic belongs to (0-based, in call order).
    pub tick: u64,
    /// Client requests: each is one batch of churn ops.
    pub requests: Vec<Vec<ChurnOp>>,
}

impl TickTraffic {
    /// Total churn ops across the tick's requests.
    #[must_use]
    pub fn op_count(&self) -> usize {
        self.requests.iter().map(Vec::len).sum()
    }
}

/// The deterministic client population stream. See the module docs.
#[derive(Debug)]
pub struct ClientPopulation {
    config: PopulationConfig,
    /// `zipf_cum[r]` = Σ_{k=1..=r+1} 1/k^s — cumulative unnormalised Zipf
    /// mass for device rank `r+1`; sampled by binary search.
    zipf_cum: Vec<f64>,
    measurements: Vec<Digest>,
    rng: StdRng,
    next_tick: u64,
}

impl ClientPopulation {
    /// Builds the population (precomputing the Zipf table — O(devices))
    /// and seeds its RNG from the config.
    #[must_use]
    pub fn new(config: PopulationConfig) -> Self {
        let devices = config.devices.max(1);
        let mut zipf_cum = Vec::with_capacity(devices as usize);
        let mut total = 0.0f64;
        for rank in 1..=devices {
            total += 1.0 / (rank as f64).powf(config.zipf_s);
            zipf_cum.push(total);
        }
        let measurements = (0..config.measurements.max(1))
            .map(|m| sha256(format!("population-cfg-{m}").as_bytes()))
            .collect();
        let rng = StdRng::seed_from_u64(config.seed);
        ClientPopulation {
            config,
            zipf_cum,
            measurements,
            rng,
            next_tick: 0,
        }
    }

    /// The config this population was built from.
    #[must_use]
    pub fn config(&self) -> &PopulationConfig {
        &self.config
    }

    /// The cold-start traffic: every device registers once, in id order,
    /// chunked into requests of the configured size. Call once, before
    /// the first [`next_tick`](Self::next_tick).
    #[must_use]
    pub fn registration_wave(&mut self) -> Vec<Vec<ChurnOp>> {
        let per_request = self.config.ops_per_request.max(1);
        let mut requests = Vec::new();
        let mut current = Vec::with_capacity(per_request);
        for id in 0..self.config.devices {
            current.push(self.attest_op(id));
            if current.len() == per_request {
                requests.push(std::mem::take(&mut current));
            }
        }
        if !current.is_empty() {
            requests.push(current);
        }
        requests
    }

    /// Generates the next tick's traffic. Ticks must be consumed in
    /// order; the stream is deterministic per config and call sequence.
    pub fn next_tick(&mut self) -> TickTraffic {
        let tick = self.next_tick;
        self.next_tick += 1;
        let ops = self.ops_at(tick);
        let per_request = self.config.ops_per_request.max(1);
        let mut requests = Vec::with_capacity(ops as usize / per_request + 1);
        let mut current = Vec::with_capacity(per_request);
        for _ in 0..ops {
            current.push(self.churn_op());
            if current.len() == per_request {
                requests.push(std::mem::take(&mut current));
            }
        }
        if !current.is_empty() {
            requests.push(current);
        }
        TickTraffic { tick, requests }
    }

    /// The diurnal op budget for `tick`:
    /// `round(mean · (1 + A·sin(2π·tick/period)))`.
    #[must_use]
    pub fn ops_at(&self, tick: u64) -> u64 {
        let mean = self.config.mean_ops_per_tick as f64;
        if self.config.diurnal_period == 0 || self.config.diurnal_amplitude == 0.0 {
            return self.config.mean_ops_per_tick;
        }
        let phase = (tick % self.config.diurnal_period) as f64 / self.config.diurnal_period as f64;
        let factor =
            1.0 + self.config.diurnal_amplitude * (2.0 * std::f64::consts::PI * phase).sin();
        (mean * factor).round().max(0.0) as u64
    }

    /// One Zipf device draw: rank `r` with probability ∝ `1/r^s`, mapped
    /// to device id `r - 1`.
    fn sample_device(&mut self) -> u64 {
        let total = *self
            .zipf_cum
            .last()
            .expect("population has at least one device");
        let u: f64 = self.rng.gen::<f64>() * total;
        self.zipf_cum.partition_point(|&c| c < u) as u64
    }

    fn attest_op(&mut self, device: u64) -> ChurnOp {
        let m = self.rng.gen_range(0..self.measurements.len());
        let power = self.rng.gen_range(1..self.config.max_power.max(2));
        ChurnOp::attest(
            ReplicaId::new(device),
            self.measurements[m],
            VotingPower::new(power),
        )
    }

    fn churn_op(&mut self) -> ChurnOp {
        let device = self.sample_device();
        let roll: u32 = self.rng.gen_range(0..1000);
        if roll < self.config.deregister_permille {
            ChurnOp::Deregister {
                replica: ReplicaId::new(device),
            }
        } else if roll < self.config.deregister_permille + self.config.unattested_permille {
            let power = self.rng.gen_range(1..self.config.max_power.max(2));
            ChurnOp::Unattested {
                replica: ReplicaId::new(device),
                power: VotingPower::new(power),
            }
        } else {
            self.attest_op(device)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> PopulationConfig {
        PopulationConfig::new(500, 200).with_seed(7)
    }

    #[test]
    fn identical_configs_emit_identical_streams() {
        let mut a = ClientPopulation::new(small());
        let mut b = ClientPopulation::new(small());
        assert_eq!(a.registration_wave(), b.registration_wave());
        for _ in 0..20 {
            let (ta, tb) = (a.next_tick(), b.next_tick());
            assert_eq!(ta.tick, tb.tick);
            assert_eq!(ta.requests, tb.requests);
        }
    }

    #[test]
    fn registration_wave_covers_every_device_once() {
        let mut p = ClientPopulation::new(small());
        let wave = p.registration_wave();
        let mut seen: Vec<u64> = wave
            .iter()
            .flatten()
            .map(|op| op.replica().as_u64())
            .collect();
        seen.sort_unstable();
        assert_eq!(seen, (0..500).collect::<Vec<_>>());
        assert!(wave.iter().all(|r| r.len() <= 32));
    }

    #[test]
    fn diurnal_curve_modulates_the_op_budget() {
        let p = ClientPopulation::new(small().with_diurnal(0.5, 100));
        // Peak of sin at a quarter period, trough at three quarters.
        assert_eq!(p.ops_at(25), 300);
        assert_eq!(p.ops_at(75), 100);
        let flat = ClientPopulation::new(small().with_diurnal(0.0, 100));
        assert_eq!(flat.ops_at(25), 200);
    }

    #[test]
    fn zipf_skew_concentrates_churn_on_low_ranks() {
        let mut p = ClientPopulation::new(small().with_zipf(1.2));
        let mut hot = 0u64;
        let mut total = 0u64;
        for _ in 0..50 {
            for op in p.next_tick().requests.iter().flatten() {
                total += 1;
                if op.replica().as_u64() < 25 {
                    hot += 1;
                }
            }
        }
        // The top 5 % of ranks must draw far more than 5 % of the churn.
        assert!(
            hot * 4 > total,
            "expected >25% of churn on the hottest 5% of devices, got {hot}/{total}"
        );
    }

    #[test]
    fn op_mix_respects_the_permille_thresholds() {
        let mut p = ClientPopulation::new(small());
        let (mut att, mut unatt, mut dereg) = (0u64, 0u64, 0u64);
        for _ in 0..100 {
            for op in p.next_tick().requests.iter().flatten() {
                match op {
                    ChurnOp::Attest { .. } => att += 1,
                    ChurnOp::Unattested { .. } => unatt += 1,
                    ChurnOp::Deregister { .. } => dereg += 1,
                }
            }
        }
        let total = att + unatt + dereg;
        assert!(att > total / 2, "re-attestations dominate: {att}/{total}");
        assert!(unatt > 0 && dereg > unatt);
    }
}
