//! Network partitions: time-bounded splits of the node set.

use fi_types::SimTime;
use serde::{Deserialize, Serialize};

use crate::node::NodeId;

/// A partition of the node set into disjoint groups; messages cross group
/// boundaries only when no partition window is active.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Partition {
    groups: Vec<Vec<NodeId>>,
}

impl Partition {
    /// Creates a partition from groups. Nodes absent from every group form
    /// an implicit extra group (they can talk to each other but to no named
    /// group).
    #[must_use]
    pub fn new(groups: Vec<Vec<NodeId>>) -> Self {
        Partition { groups }
    }

    /// Splits `[0, n)` into two groups at `boundary`: `[0, boundary)` and
    /// `[boundary, n)`.
    #[must_use]
    pub fn split_at(n: usize, boundary: usize) -> Self {
        let left = (0..boundary.min(n)).map(NodeId::new).collect();
        let right = (boundary.min(n)..n).map(NodeId::new).collect();
        Partition {
            groups: vec![left, right],
        }
    }

    /// Isolates a single node from everyone else.
    #[must_use]
    pub fn isolate(n: usize, victim: NodeId) -> Self {
        let rest = (0..n).map(NodeId::new).filter(|&id| id != victim).collect();
        Partition {
            groups: vec![vec![victim], rest],
        }
    }

    fn group_of(&self, node: NodeId) -> Option<usize> {
        self.groups.iter().position(|g| g.contains(&node))
    }

    /// Whether `a` can reach `b` under this partition.
    #[must_use]
    pub fn allows(&self, a: NodeId, b: NodeId) -> bool {
        if a == b {
            return true;
        }
        self.group_of(a) == self.group_of(b)
    }
}

/// A partition active during a half-open time window `[from, until)`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PartitionWindow {
    /// Window start (inclusive).
    pub from: SimTime,
    /// Window end (exclusive).
    pub until: SimTime,
    /// The partition in force.
    pub partition: Partition,
}

impl PartitionWindow {
    /// Whether the window covers `t`.
    #[must_use]
    pub fn active_at(&self, t: SimTime) -> bool {
        t >= self.from && t < self.until
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_at_separates_sides() {
        let p = Partition::split_at(4, 2);
        assert!(p.allows(NodeId::new(0), NodeId::new(1)));
        assert!(p.allows(NodeId::new(2), NodeId::new(3)));
        assert!(!p.allows(NodeId::new(1), NodeId::new(2)));
    }

    #[test]
    fn self_delivery_always_allowed() {
        let p = Partition::split_at(4, 2);
        assert!(p.allows(NodeId::new(0), NodeId::new(0)));
        let iso = Partition::isolate(4, NodeId::new(1));
        assert!(iso.allows(NodeId::new(1), NodeId::new(1)));
    }

    #[test]
    fn isolate_cuts_victim_only() {
        let p = Partition::isolate(5, NodeId::new(2));
        assert!(!p.allows(NodeId::new(2), NodeId::new(0)));
        assert!(!p.allows(NodeId::new(3), NodeId::new(2)));
        assert!(p.allows(NodeId::new(0), NodeId::new(4)));
    }

    #[test]
    fn unlisted_nodes_form_implicit_group() {
        let p = Partition::new(vec![vec![NodeId::new(0)]]);
        // 1 and 2 are unlisted: same implicit group (None == None).
        assert!(p.allows(NodeId::new(1), NodeId::new(2)));
        assert!(!p.allows(NodeId::new(0), NodeId::new(1)));
    }

    #[test]
    fn window_half_open() {
        let w = PartitionWindow {
            from: SimTime::from_secs(1),
            until: SimTime::from_secs(2),
            partition: Partition::split_at(2, 1),
        };
        assert!(!w.active_at(SimTime::from_micros(999_999)));
        assert!(w.active_at(SimTime::from_secs(1)));
        assert!(!w.active_at(SimTime::from_secs(2)));
    }

    #[test]
    fn split_at_clamps_boundary() {
        let p = Partition::split_at(3, 10);
        assert!(p.allows(NodeId::new(0), NodeId::new(2)));
    }
}
