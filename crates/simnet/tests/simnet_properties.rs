//! Property-based tests for the simulator: determinism, message
//! conservation, and partition semantics under arbitrary workloads.

use fi_simnet::partition::PartitionWindow;
use fi_simnet::{
    Context, LatencyModel, NetworkConfig, Node, NodeId, Partition, Simulation, TimerToken,
};
use fi_types::SimTime;
use proptest::prelude::*;

/// A gossiping node: relays every message to a pseudo-random peer until a
/// hop budget is spent.
struct Gossip {
    received: u64,
}

impl Node for Gossip {
    type Message = u32; // remaining hops

    fn on_start(&mut self, ctx: &mut Context<'_, u32>) {
        if ctx.id() == NodeId::new(0) {
            ctx.broadcast(8);
        }
        ctx.set_timer(SimTime::from_millis(7), TimerToken::new(1));
    }

    fn on_message(&mut self, _from: NodeId, hops: u32, ctx: &mut Context<'_, u32>) {
        self.received += 1;
        if hops > 0 {
            let peer = NodeId::new(ctx.random_below(ctx.node_count() as u64) as usize);
            ctx.send(peer, hops - 1);
        }
    }

    fn on_timer(&mut self, _token: TimerToken, ctx: &mut Context<'_, u32>) {
        ctx.send(ctx.id(), 0); // self-ping each timer tick, once
    }
}

fn run(n: usize, seed: u64, drop: f64, horizon_ms: u64) -> Simulation<Gossip> {
    let config = NetworkConfig::with_latency(LatencyModel::Uniform {
        min: SimTime::from_micros(100),
        max: SimTime::from_millis(3),
    })
    .drop_probability(drop);
    let mut sim = Simulation::new(config, seed);
    for _ in 0..n {
        sim.add_node(Gossip { received: 0 });
    }
    sim.run_until(SimTime::from_millis(horizon_ms));
    sim
}

proptest! {
    // Pinned case count: the vendored proptest runner derives every case
    // seed from the test name, so this suite is reproducible bit-for-bit.
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Identical seeds give identical traces; different seeds (almost
    /// always) differ somewhere.
    #[test]
    fn deterministic_in_seed(n in 2usize..12, seed in 0u64..500, drop_pct in 0u32..30) {
        let drop = f64::from(drop_pct) / 100.0;
        let a = run(n, seed, drop, 100);
        let b = run(n, seed, drop, 100);
        prop_assert_eq!(a.stats(), b.stats());
        for i in 0..n {
            prop_assert_eq!(
                a.node(NodeId::new(i)).received,
                b.node(NodeId::new(i)).received
            );
        }
    }

    /// Conservation: sent = delivered + dropped + blocked + still-queued.
    #[test]
    fn message_conservation(n in 2usize..12, seed in 0u64..500, drop_pct in 0u32..50) {
        let drop = f64::from(drop_pct) / 100.0;
        let sim = run(n, seed, drop, 60);
        let s = sim.stats();
        prop_assert_eq!(
            s.sent(),
            s.delivered()
                + s.dropped()
                + s.blocked_by_partition()
                + sim.pending_events() as u64
                    // timers also sit in the queue; exclude them by noting
                    // every queued event at the horizon is either a message
                    // or a timer, and timers pending = timers armed - fired.
                    - count_pending_timers(&sim)
        );
        // Per-node sends sum to the global counter.
        let per_node: u64 = (0..n).map(|i| s.sent_by(NodeId::new(i))).sum();
        prop_assert_eq!(per_node, s.sent());
    }

    /// With a full partition isolating node 0, node 0 never receives a
    /// foreign message.
    #[test]
    fn partition_is_airtight(n in 3usize..10, seed in 0u64..200) {
        let config = NetworkConfig::default().partition(PartitionWindow {
            from: SimTime::ZERO,
            until: SimTime::MAX,
            partition: Partition::isolate(n, NodeId::new(0)),
        });
        let mut sim: Simulation<Gossip> = Simulation::new(config, seed);
        for _ in 0..n {
            sim.add_node(Gossip { received: 0 });
        }
        sim.run_until(SimTime::from_millis(50));
        // Node 0's broadcast was blocked; the only deliveries it can see
        // are its own timer self-pings.
        prop_assert_eq!(sim.stats().blocked_by_partition() as usize % n, (n - 1) % n);
        for i in 1..n {
            // Peers only ever hear from each other after node 0's broadcast
            // was blocked: they can still self-ping.
            let _ = sim.node(NodeId::new(i)).received;
        }
    }

    /// Drop probability 1.0 delivers nothing.
    #[test]
    fn full_loss_delivers_nothing(n in 2usize..8, seed in 0u64..100) {
        let sim = run(n, seed, 1.0, 40);
        prop_assert_eq!(sim.stats().delivered(), 0);
    }
}

/// Timers pending in the queue: total armed minus fired. Gossip arms one
/// timer per node at start and never re-arms.
fn count_pending_timers(sim: &Simulation<Gossip>) -> u64 {
    sim.node_count() as u64 - sim.stats().timers_fired()
}
