//! Property-based tests for the entropy axioms underlying the paper's
//! diversity argument (§IV).

use fi_entropy::abundance::AbundanceVector;
use fi_entropy::optimal::{nearest_kappa_optimal, KappaOptimality};
use fi_entropy::propositions::{check_proposition1, check_proposition2};
use fi_entropy::renyi::{concentration_index, min_entropy_bits, renyi_entropy_bits};
use fi_entropy::shannon::{
    evenness, kl_divergence_bits, max_entropy_bits, shannon_entropy_bits, uniformity_gap_bits,
};
use fi_entropy::{Distribution, EntropyAccumulator};
use proptest::prelude::*;

const EPS: f64 = 1e-9;

fn weights_strategy() -> impl Strategy<Value = Vec<f64>> {
    // Non-trivial weight vectors: 1..=24 entries, at least one positive.
    proptest::collection::vec(0.0f64..100.0, 1..24)
        .prop_filter("needs positive mass", |w| w.iter().sum::<f64>() > 1e-6)
}

fn counts_strategy() -> impl Strategy<Value = Vec<u64>> {
    proptest::collection::vec(0u64..50, 1..16)
        .prop_filter("needs positive mass", |c| c.iter().sum::<u64>() > 0)
}

proptest! {
    // Pinned case count: the vendored proptest runner derives every case
    // seed from the test name, so this suite is reproducible bit-for-bit.
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// H(p) is bounded by 0 and log2 k; zero only on point masses.
    #[test]
    fn entropy_bounds(weights in weights_strategy()) {
        let p = Distribution::from_weights(&weights).unwrap();
        let h = shannon_entropy_bits(&p);
        prop_assert!(h >= 0.0);
        prop_assert!(h <= max_entropy_bits(p.dimension()) + EPS);
        prop_assert!(h <= max_entropy_bits(p.support_size()) + EPS);
        if p.support_size() == 1 {
            prop_assert!(h.abs() < EPS);
        }
    }

    /// Entropy is invariant under permutation of outcomes.
    #[test]
    fn entropy_permutation_invariant(weights in weights_strategy(), seed in 0u64..1000) {
        let p = Distribution::from_weights(&weights).unwrap();
        let mut permuted = weights.clone();
        // Deterministic pseudo-shuffle driven by the seed.
        let n = permuted.len();
        for i in 0..n {
            let j = ((seed as usize).wrapping_mul(31).wrapping_add(i * 17)) % n;
            permuted.swap(i, j);
        }
        let q = Distribution::from_weights(&permuted).unwrap();
        prop_assert!((shannon_entropy_bits(&p) - shannon_entropy_bits(&q)).abs() < EPS);
    }

    /// The uniform distribution uniquely maximises entropy for its
    /// dimension (paper §IV-A, condition 1).
    #[test]
    fn uniform_maximises(weights in weights_strategy()) {
        let p = Distribution::from_weights(&weights).unwrap();
        let u = Distribution::uniform(p.dimension()).unwrap();
        prop_assert!(shannon_entropy_bits(&p) <= shannon_entropy_bits(&u) + EPS);
    }

    /// Grouping outcomes (delegation, §III) never increases entropy.
    #[test]
    fn grouping_never_increases(weights in weights_strategy()) {
        let p = Distribution::from_weights(&weights).unwrap();
        let n = p.dimension();
        if n >= 2 {
            // Pair up adjacent indices.
            let mut groups: Vec<Vec<usize>> = Vec::new();
            let mut i = 0;
            while i + 1 < n {
                groups.push(vec![i, i + 1]);
                i += 2;
            }
            if i < n {
                groups.push(vec![i]);
            }
            let g = p.grouped(&groups).unwrap();
            prop_assert!(shannon_entropy_bits(&g) <= shannon_entropy_bits(&p) + EPS);
        }
    }

    /// Padding with unused configurations changes nothing (log(1/0) := 0).
    #[test]
    fn padding_is_inert(weights in weights_strategy(), extra in 0usize..10) {
        let p = Distribution::from_weights(&weights).unwrap();
        let padded = p.padded(extra);
        prop_assert!((shannon_entropy_bits(&p) - shannon_entropy_bits(&padded)).abs() < EPS);
        prop_assert_eq!(p.support_size(), padded.support_size());
    }

    /// Renyi entropy is non-increasing in alpha; min-entropy is the floor.
    #[test]
    fn renyi_monotone(weights in weights_strategy()) {
        let p = Distribution::from_weights(&weights).unwrap();
        let orders = [0.0, 0.5, 1.0, 2.0, 4.0, f64::INFINITY];
        let hs: Vec<f64> = orders
            .iter()
            .map(|&a| renyi_entropy_bits(&p, a).unwrap())
            .collect();
        for w in hs.windows(2) {
            prop_assert!(w[0] >= w[1] - EPS);
        }
        prop_assert!((hs[5] - min_entropy_bits(&p)).abs() < EPS);
    }

    /// Concentration index and support obey 1/k <= sum p^2 <= 1.
    #[test]
    fn concentration_bounds(weights in weights_strategy()) {
        let p = Distribution::from_weights(&weights).unwrap();
        let c = concentration_index(&p);
        prop_assert!(c <= 1.0 + EPS);
        prop_assert!(c >= 1.0 / p.support_size() as f64 - EPS);
    }

    /// KL divergence to any q is non-negative; to itself zero.
    #[test]
    fn kl_nonnegative(weights in weights_strategy()) {
        let p = Distribution::from_weights(&weights).unwrap();
        let u = Distribution::uniform(p.dimension()).unwrap();
        prop_assert!(kl_divergence_bits(&p, &u).unwrap() >= -EPS);
        prop_assert!(kl_divergence_bits(&p, &p).unwrap().abs() < EPS);
        prop_assert!((uniformity_gap_bits(&p) - kl_divergence_bits(&p, &u).unwrap()).abs() < 1e-6);
    }

    /// Evenness is in [0, 1] and exactly 1 on kappa-optimal distributions.
    #[test]
    fn evenness_bounds(weights in weights_strategy()) {
        let p = Distribution::from_weights(&weights).unwrap();
        let e = evenness(&p);
        prop_assert!((0.0..=1.0 + EPS).contains(&e));
        let opt = nearest_kappa_optimal(&p);
        prop_assert!((evenness(&opt) - 1.0).abs() < 1e-6);
        prop_assert!(KappaOptimality::check(&opt, 1e-9).is_optimal());
    }

    /// nearest_kappa_optimal dominates the original entropy.
    #[test]
    fn kappa_optimal_dominates(weights in weights_strategy()) {
        let p = Distribution::from_weights(&weights).unwrap();
        let opt = nearest_kappa_optimal(&p);
        prop_assert!(shannon_entropy_bits(&opt) >= shannon_entropy_bits(&p) - EPS);
        prop_assert_eq!(opt.support_size(), p.support_size());
    }

    /// Proposition 1 holds on arbitrary kappa-optimal starting points and
    /// arbitrary increments.
    #[test]
    fn proposition1_universal(
        kappa in 1usize..12,
        omega in 1u64..20,
        increments in proptest::collection::vec(0u64..30, 12),
    ) {
        let base = AbundanceVector::uniform(kappa, omega).unwrap();
        let inc = &increments[..kappa];
        let out = check_proposition1(&base, inc).unwrap();
        prop_assert!(out.holds, "prop1 violated: {out:?}");
    }

    /// Proposition 2 holds on arbitrary base/added weight vectors.
    #[test]
    fn proposition2_universal(
        base in counts_strategy(),
        added in proptest::collection::vec(0u64..50, 0..12),
    ) {
        let base_f: Vec<f64> = base.iter().map(|&c| c as f64).collect();
        let added_f: Vec<f64> = added.iter().map(|&c| c as f64).collect();
        let out = check_proposition2(&base_f, &added_f).unwrap();
        prop_assert!(out.holds, "prop2 violated: {out:?}");
        prop_assert!(out.entropy_gain <= out.head_limited_bound + EPS);
    }

    /// from_counts and from_powers agree with manual normalization.
    #[test]
    fn counts_normalization(counts in counts_strategy()) {
        let p = Distribution::from_counts(&counts).unwrap();
        let total: u64 = counts.iter().sum();
        for (i, &c) in counts.iter().enumerate() {
            prop_assert!((p.probabilities()[i] - c as f64 / total as f64).abs() < EPS);
        }
    }

    /// Mixing moves entropy above the minimum of the parts (concavity).
    #[test]
    fn mixing_concavity(weights in weights_strategy(), lambda in 0.0f64..1.0) {
        let p = Distribution::from_weights(&weights).unwrap();
        let u = Distribution::uniform(p.dimension()).unwrap();
        let m = p.mixed(&u, lambda).unwrap();
        let hp = shannon_entropy_bits(&p);
        let hu = shannon_entropy_bits(&u);
        let hm = shannon_entropy_bits(&m);
        prop_assert!(hm >= lambda * hp + (1.0 - lambda) * hu - EPS);
    }

    /// Incremental == naive: after any add/remove sequence, the
    /// accumulator's entropy matches `shannon_entropy_bits` on the resulting
    /// distribution, every peek matches its applied counterpart bitwise, and
    /// the sign fix holds (never −0.0).
    #[test]
    fn accumulator_matches_naive_after_any_sequence(
        ops in proptest::collection::vec(
            (0usize..8, 1u64..2_000, proptest::bool::ANY),
            1..80,
        ),
    ) {
        let mut acc = EntropyAccumulator::new(8);
        let mut weights = [0u64; 8];
        for (slot, amount, is_remove) in ops {
            if is_remove && weights[slot] > 0 {
                let w = amount.min(weights[slot]);
                let peek = acc.peek_remove(slot, w);
                acc.remove(slot, w);
                weights[slot] -= w;
                prop_assert_eq!(peek.to_bits(), acc.entropy_bits().to_bits());
            } else {
                let peek = acc.peek_add(slot, amount);
                acc.add(slot, amount);
                weights[slot] += amount;
                prop_assert_eq!(peek.to_bits(), acc.entropy_bits().to_bits());
            }
            let h = acc.entropy_bits();
            let expect = match Distribution::from_counts(&weights) {
                Ok(d) => shannon_entropy_bits(&d),
                Err(_) => 0.0,
            };
            prop_assert!((h - expect).abs() < EPS, "acc {h} vs naive {expect}");
            prop_assert!(!h.is_sign_negative(), "entropy must never be -0.0");
            prop_assert_eq!(
                acc.total_weight(),
                weights.iter().sum::<u64>(),
                "integer total must be exact"
            );
        }
    }

    /// peek_move agrees with the naive recomputation of the moved vector
    /// and conserves total power.
    #[test]
    fn accumulator_move_matches_naive(
        base in proptest::collection::vec(0u64..2_000, 2..8),
        from_pick in 0usize..8,
        to_pick in 0usize..8,
        amount in 1u64..2_000,
    ) {
        let mut acc = EntropyAccumulator::from_weights(&base);
        let from = from_pick % base.len();
        let to = to_pick % base.len();
        let w = amount.min(base[from]);
        let peek = acc.peek_move(from, to, w);
        acc.apply_move(from, to, w);
        prop_assert_eq!(peek.to_bits(), acc.entropy_bits().to_bits());
        let mut moved = base.clone();
        moved[from] -= w;
        moved[to] += w;
        let expect = match Distribution::from_counts(&moved) {
            Ok(d) => shannon_entropy_bits(&d),
            Err(_) => 0.0,
        };
        prop_assert!((acc.entropy_bits() - expect).abs() < EPS);
        prop_assert_eq!(acc.total_weight(), base.iter().sum::<u64>());
    }
}
