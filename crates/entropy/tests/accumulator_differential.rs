//! Differential property suite for [`EntropyAccumulator`]: random
//! adversarially-interleaved operation sequences, cross-checked against a
//! from-scratch `shannon` recompute after **every** operation.
//!
//! The incremental engine's two documented guarantees are exercised here
//! under interleavings the unit tests never reach:
//!
//! * after any op sequence, `entropy_bits()` agrees with
//!   `shannon_entropy_bits` on the mirrored weight vector (to well under
//!   the engine's 1e-9 bound);
//! * every `peek_*` is **bit-exact** against its mutate-then-read
//!   counterpart, at every intermediate state — the property the greedy
//!   selection loop's compare-then-apply discipline rests on.

use fi_entropy::shannon::shannon_entropy_bits;
use fi_entropy::{Distribution, EntropyAccumulator};
use proptest::prelude::*;

/// One step of an interleaved workload, with raw operands that get clamped
/// into validity against the mirror state at application time.
#[derive(Debug, Clone, Copy)]
enum Op {
    Add { slot: usize, w: u64 },
    Remove { slot: usize, w: u64 },
    Move { from: usize, to: usize, w: u64 },
    PeekAdd { slot: usize, w: u64 },
    PeekRemove { slot: usize, w: u64 },
    PeekMove { from: usize, to: usize, w: u64 },
    PushSlot,
    InsertSlot { at: usize, w: u64 },
    RemoveSlot { at: usize },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    // Raw indices/weights; `apply` clamps them against the live mirror so
    // every generated sequence is a valid adversarial interleaving.
    (0u8..9, 0usize..12, 0usize..12, 0u64..1_000).prop_map(|(kind, a, b, w)| match kind {
        0 => Op::Add { slot: a, w },
        1 => Op::Remove { slot: a, w },
        2 => Op::Move { from: a, to: b, w },
        3 => Op::PeekAdd { slot: a, w },
        4 => Op::PeekRemove { slot: a, w },
        5 => Op::PeekMove { from: a, to: b, w },
        6 => Op::InsertSlot { at: a, w },
        7 => Op::RemoveSlot { at: a },
        _ => Op::PushSlot,
    })
}

/// From-scratch recompute over the mirrored weights — the oracle.
fn oracle_entropy(weights: &[u64]) -> f64 {
    match Distribution::from_counts(weights) {
        Ok(d) => shannon_entropy_bits(&d),
        // Empty/zero-mass states: the accumulator pins these to +0.0.
        Err(_) => 0.0,
    }
}

/// Applies `op` to the accumulator and the shadow vector, asserting the
/// peek/apply bit-exactness contract on the way.
fn apply(op: Op, acc: &mut EntropyAccumulator, mirror: &mut Vec<u64>) -> Result<(), TestCaseError> {
    let k = mirror.len();
    match op {
        Op::Add { slot, w } => {
            let slot = slot % k;
            let peek = acc.peek_add(slot, w);
            acc.add(slot, w);
            mirror[slot] += w;
            prop_assert_eq!(
                peek.to_bits(),
                acc.entropy_bits().to_bits(),
                "peek_add must be bit-exact against add"
            );
        }
        Op::Remove { slot, w } => {
            let slot = slot % k;
            let w = w.min(mirror[slot]);
            let peek = acc.peek_remove(slot, w);
            acc.remove(slot, w);
            mirror[slot] -= w;
            prop_assert_eq!(
                peek.to_bits(),
                acc.entropy_bits().to_bits(),
                "peek_remove must be bit-exact against remove"
            );
        }
        Op::Move { from, to, w } => {
            let (from, to) = (from % k, to % k);
            let w = w.min(mirror[from]);
            let peek = acc.peek_move(from, to, w);
            acc.apply_move(from, to, w);
            if from != to {
                mirror[from] -= w;
                mirror[to] += w;
            }
            prop_assert_eq!(
                peek.to_bits(),
                acc.entropy_bits().to_bits(),
                "peek_move must be bit-exact against apply_move"
            );
        }
        Op::PeekAdd { slot, w } => {
            // Pure peeks must not disturb the state.
            let before = acc.entropy_bits();
            let _ = acc.peek_add(slot % k, w);
            prop_assert_eq!(before.to_bits(), acc.entropy_bits().to_bits());
        }
        Op::PeekRemove { slot, w } => {
            let slot = slot % k;
            let before = acc.entropy_bits();
            let _ = acc.peek_remove(slot, w.min(mirror[slot]));
            prop_assert_eq!(before.to_bits(), acc.entropy_bits().to_bits());
        }
        Op::PeekMove { from, to, w } => {
            let from = from % k;
            let before = acc.entropy_bits();
            let _ = acc.peek_move(from, to % k, w.min(mirror[from]));
            prop_assert_eq!(before.to_bits(), acc.entropy_bits().to_bits());
        }
        Op::PushSlot => {
            let slot = acc.push_slot();
            prop_assert_eq!(slot, mirror.len());
            mirror.push(0);
        }
        Op::InsertSlot { at, w } => {
            // The differential-sealing splice: a bucket is born at an
            // arbitrary position of the canonical sorted layout.
            let at = at % (k + 1);
            acc.insert_slot(at, w);
            mirror.insert(at, w);
        }
        Op::RemoveSlot { at } => {
            // Keep at least one slot so index-clamping (`% k`) stays
            // meaningful for the other ops.
            if k > 1 {
                let at = at % k;
                let expected = mirror.remove(at);
                prop_assert_eq!(acc.remove_slot(at), expected);
            }
        }
    }
    Ok(())
}

proptest! {
    // Pinned case count: the vendored proptest runner derives every case
    // seed from the test name, so this suite is reproducible bit-for-bit.
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The core differential property: after *every* op of a random
    /// interleaving, the accumulator agrees with a from-scratch shannon
    /// recompute of the mirrored weights, and all derived state (total,
    /// support, per-slot weights) matches exactly.
    #[test]
    fn interleaved_ops_agree_with_shannon_recompute(
        initial in proptest::collection::vec(0u64..500, 1..10),
        ops in proptest::collection::vec(op_strategy(), 1..60),
    ) {
        let mut acc = EntropyAccumulator::from_weights(&initial);
        let mut mirror = initial.clone();
        for (step, &op) in ops.iter().enumerate() {
            apply(op, &mut acc, &mut mirror)?;

            let expected = oracle_entropy(&mirror);
            let actual = acc.entropy_bits();
            prop_assert!(
                (actual - expected).abs() < 1e-9,
                "step {step} ({op:?}): accumulator {actual} vs shannon {expected} on {mirror:?}"
            );
            prop_assert_eq!(acc.total_weight(), mirror.iter().sum::<u64>());
            prop_assert_eq!(
                acc.support_size(),
                mirror.iter().filter(|&&w| w > 0).count()
            );
            for (slot, &w) in mirror.iter().enumerate() {
                prop_assert_eq!(acc.weight(slot), w);
            }
            // Degenerate states are pinned to exactly +0.0, never -0.0.
            if acc.support_size() <= 1 {
                prop_assert_eq!(actual, 0.0);
                prop_assert!(actual.is_sign_positive());
            }
        }
    }

    /// Rebuilding from the mirrored end state is bit-exact against a fresh
    /// `from_weights` — churn leaves no residue in `W` and only bounded
    /// rounding in `S`.
    #[test]
    fn churned_accumulator_matches_fresh_rebuild(
        initial in proptest::collection::vec(0u64..500, 1..10),
        ops in proptest::collection::vec(op_strategy(), 1..60),
    ) {
        let mut acc = EntropyAccumulator::from_weights(&initial);
        let mut mirror = initial.clone();
        for &op in &ops {
            apply(op, &mut acc, &mut mirror)?;
        }
        let fresh = EntropyAccumulator::from_weights(&mirror);
        prop_assert_eq!(acc.total_weight(), fresh.total_weight());
        prop_assert_eq!(acc.support_size(), fresh.support_size());
        prop_assert!(
            (acc.entropy_bits() - fresh.entropy_bits()).abs() < 1e-9,
            "churned {} vs fresh {}",
            acc.entropy_bits(),
            fresh.entropy_bits()
        );
    }
}
