//! Entropy estimation from sampled configuration observations.
//!
//! Configuration discovery (paper §III-B) yields *samples*: attestation
//! quotes from some subset of replicas. Estimating the diversity of the
//! whole population from those samples is a classic problem; we provide the
//! plug-in (maximum-likelihood) estimator and the Miller–Madow
//! bias-corrected estimator, plus a small frequency-table builder.

use std::collections::HashMap;
use std::hash::Hash;

use crate::dist::Distribution;
use crate::error::DistributionError;

/// A frequency table over observed configuration labels.
///
/// # Example
///
/// ```
/// use fi_entropy::estimate::FrequencyTable;
/// let mut table = FrequencyTable::new();
/// for label in ["linux", "bsd", "linux", "illumos"] {
///     table.observe(label);
/// }
/// assert_eq!(table.total(), 4);
/// assert_eq!(table.distinct(), 3);
/// assert_eq!(table.count(&"linux"), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FrequencyTable<T: Eq + Hash> {
    counts: HashMap<T, u64>,
    total: u64,
}

impl<T: Eq + Hash> Default for FrequencyTable<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T: Eq + Hash> FrequencyTable<T> {
    /// Creates an empty table.
    #[must_use]
    pub fn new() -> Self {
        FrequencyTable {
            counts: HashMap::new(),
            total: 0,
        }
    }

    /// Records one observation of `label`.
    pub fn observe(&mut self, label: T) {
        *self.counts.entry(label).or_insert(0) += 1;
        self.total += 1;
    }

    /// Records `n` observations of `label`.
    pub fn observe_n(&mut self, label: T, n: u64) {
        *self.counts.entry(label).or_insert(0) += n;
        self.total += n;
    }

    /// Total observations.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Number of distinct labels seen.
    #[must_use]
    pub fn distinct(&self) -> usize {
        self.counts.len()
    }

    /// Count for a specific label (0 if unseen).
    #[must_use]
    pub fn count(&self, label: &T) -> u64 {
        self.counts.get(label).copied().unwrap_or(0)
    }

    /// The empirical distribution over observed labels (order unspecified
    /// but deterministic per table content is *not* guaranteed; use
    /// [`counts_sorted`](Self::counts_sorted) when order matters).
    ///
    /// # Errors
    ///
    /// Returns [`DistributionError::Empty`] when no observations were made.
    pub fn empirical(&self) -> Result<Distribution, DistributionError> {
        if self.total == 0 {
            return Err(DistributionError::Empty);
        }
        let counts: Vec<u64> = self.counts.values().copied().collect();
        Distribution::from_counts(&counts)
    }

    /// The counts in descending order — a deterministic summary invariant
    /// under label renaming (entropy only depends on this multiset).
    #[must_use]
    pub fn counts_sorted(&self) -> Vec<u64> {
        let mut counts: Vec<u64> = self.counts.values().copied().collect();
        counts.sort_unstable_by(|a, b| b.cmp(a));
        counts
    }
}

impl<T: Eq + Hash> FromIterator<T> for FrequencyTable<T> {
    fn from_iter<I: IntoIterator<Item = T>>(iter: I) -> Self {
        let mut table = FrequencyTable::new();
        for item in iter {
            table.observe(item);
        }
        table
    }
}

impl<T: Eq + Hash> Extend<T> for FrequencyTable<T> {
    fn extend<I: IntoIterator<Item = T>>(&mut self, iter: I) {
        for item in iter {
            self.observe(item);
        }
    }
}

/// Plug-in (maximum-likelihood) entropy estimate in bits from sample
/// counts: the entropy of the empirical distribution. Biased low for small
/// samples.
///
/// # Errors
///
/// Returns [`DistributionError`] if `counts` is empty or all-zero.
pub fn plugin_entropy_bits(counts: &[u64]) -> Result<f64, DistributionError> {
    Ok(Distribution::from_counts(counts)?.shannon_entropy())
}

/// Miller–Madow bias-corrected entropy estimate in bits:
/// `H_plugin + (m − 1) / (2 n ln 2)` where `m` is the number of non-zero
/// counts and `n` the sample size.
///
/// # Errors
///
/// Returns [`DistributionError`] if `counts` is empty or all-zero.
pub fn miller_madow_entropy_bits(counts: &[u64]) -> Result<f64, DistributionError> {
    let plugin = plugin_entropy_bits(counts)?;
    let m = counts.iter().filter(|&&c| c > 0).count() as f64;
    let n: u64 = counts.iter().sum();
    Ok(plugin + (m - 1.0) / (2.0 * n as f64 * std::f64::consts::LN_2))
}

/// Coverage-adjusted support estimate (Chao1): a lower bound on the true
/// number of configurations given singletons `f1` and doubletons `f2`
/// observed among `counts`. Useful when attestation coverage is partial and
/// the discovered support undercounts `κ`.
///
/// # Errors
///
/// Returns [`DistributionError`] if `counts` is empty or all-zero.
pub fn chao1_support_estimate(counts: &[u64]) -> Result<f64, DistributionError> {
    if counts.is_empty() {
        return Err(DistributionError::Empty);
    }
    let observed = counts.iter().filter(|&&c| c > 0).count();
    if observed == 0 {
        return Err(DistributionError::ZeroTotalWeight);
    }
    let f1 = counts.iter().filter(|&&c| c == 1).count() as f64;
    let f2 = counts.iter().filter(|&&c| c == 2).count() as f64;
    let correction = if f2 > 0.0 {
        f1 * f1 / (2.0 * f2)
    } else {
        f1 * (f1 - 1.0) / 2.0
    };
    Ok(observed as f64 + correction)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn frequency_table_basics() {
        let mut t = FrequencyTable::new();
        t.observe("a");
        t.observe("b");
        t.observe_n("a", 3);
        assert_eq!(t.total(), 5);
        assert_eq!(t.distinct(), 2);
        assert_eq!(t.count(&"a"), 4);
        assert_eq!(t.count(&"z"), 0);
        assert_eq!(t.counts_sorted(), vec![4, 1]);
    }

    #[test]
    fn frequency_table_from_iterator_and_extend() {
        let mut t: FrequencyTable<u8> = [1u8, 2, 1].into_iter().collect();
        t.extend([2u8, 3]);
        assert_eq!(t.total(), 5);
        assert_eq!(t.distinct(), 3);
    }

    #[test]
    fn empirical_distribution_errors_when_empty() {
        let t: FrequencyTable<u8> = FrequencyTable::new();
        assert!(t.empirical().is_err());
    }

    #[test]
    fn empirical_entropy_matches_plugin() {
        let t: FrequencyTable<char> = "aabbbb".chars().collect();
        let h_table = t.empirical().unwrap().shannon_entropy();
        let h_plugin = plugin_entropy_bits(&t.counts_sorted()).unwrap();
        assert!((h_table - h_plugin).abs() < 1e-12);
    }

    #[test]
    fn plugin_matches_exact_on_exact_counts() {
        let h = plugin_entropy_bits(&[1, 1, 1, 1]).unwrap();
        assert!((h - 2.0).abs() < 1e-12);
    }

    #[test]
    fn miller_madow_is_above_plugin() {
        let counts = [5, 3, 2, 1, 1];
        let plugin = plugin_entropy_bits(&counts).unwrap();
        let mm = miller_madow_entropy_bits(&counts).unwrap();
        assert!(mm > plugin);
    }

    #[test]
    fn miller_madow_correction_shrinks_with_sample_size() {
        let small =
            miller_madow_entropy_bits(&[2, 2]).unwrap() - plugin_entropy_bits(&[2, 2]).unwrap();
        let large = miller_madow_entropy_bits(&[200, 200]).unwrap()
            - plugin_entropy_bits(&[200, 200]).unwrap();
        assert!(large < small);
    }

    #[test]
    fn estimators_converge_to_truth_on_large_samples() {
        // Sample from a known distribution and check the estimate is close.
        let probs = [0.5, 0.25, 0.125, 0.125];
        let truth: f64 = probs.iter().map(|p: &f64| -p * p.log2()).sum();
        let mut rng = StdRng::seed_from_u64(42);
        let mut counts = [0u64; 4];
        for _ in 0..200_000 {
            let x: f64 = rng.gen();
            let mut acc = 0.0;
            for (i, &p) in probs.iter().enumerate() {
                acc += p;
                if x < acc {
                    counts[i] += 1;
                    break;
                }
            }
        }
        let est = miller_madow_entropy_bits(&counts).unwrap();
        assert!(
            (est - truth).abs() < 0.01,
            "estimate {est} vs truth {truth}"
        );
    }

    #[test]
    fn chao1_with_no_rare_species_equals_observed() {
        let est = chao1_support_estimate(&[10, 20, 30]).unwrap();
        assert!((est - 3.0).abs() < 1e-12);
    }

    #[test]
    fn chao1_extrapolates_with_singletons() {
        // Many singletons suggest unseen configurations.
        let est = chao1_support_estimate(&[1, 1, 1, 1, 2]).unwrap();
        assert!(est > 5.0);
    }

    #[test]
    fn chao1_rejects_empty() {
        assert!(chao1_support_estimate(&[]).is_err());
        assert!(chao1_support_estimate(&[0, 0]).is_err());
    }
}
