//! Complementary decentralization metrics.
//!
//! Entropy is the paper's headline measure, but practitioners read
//! concentration through other lenses too. These metrics share the same
//! [`Distribution`] input so experiments can report them side by side:
//!
//! * the **Nakamoto coefficient** — the minimum number of configurations
//!   that jointly control a threshold share (e.g. 50 % for Nakamoto
//!   consensus, 33 % for BFT quorum denial);
//! * the **Gini coefficient** — inequality of the share distribution;
//! * the **top-k share** — cumulative share of the k largest
//!   configurations (the "top 10 pools possess over 96 %" figure from
//!   §III-A).

use crate::dist::Distribution;
use crate::error::DistributionError;

/// The minimum number of configurations whose combined share strictly
/// exceeds `threshold`. Returns `None` if even all of them together do not
/// (possible only when `threshold ≥ 1`).
///
/// # Errors
///
/// Returns [`DistributionError::InvalidProbability`] if `threshold` is not
/// in `[0, 1]`.
///
/// # Example
///
/// ```
/// use fi_entropy::{metrics::nakamoto_coefficient, Distribution};
/// let p = Distribution::from_weights(&[40.0, 30.0, 20.0, 10.0])?;
/// // 40% alone is not > 50%; 40% + 30% is.
/// assert_eq!(nakamoto_coefficient(&p, 0.5)?, Some(2));
/// // One configuration already exceeds a 33% BFT threshold.
/// assert_eq!(nakamoto_coefficient(&p, 1.0 / 3.0)?, Some(1));
/// # Ok::<(), fi_entropy::DistributionError>(())
/// ```
pub fn nakamoto_coefficient(
    p: &Distribution,
    threshold: f64,
) -> Result<Option<usize>, DistributionError> {
    if !(0.0..=1.0).contains(&threshold) || !threshold.is_finite() {
        return Err(DistributionError::InvalidProbability {
            index: 0,
            value: threshold,
        });
    }
    let mut shares: Vec<f64> = p.probabilities().to_vec();
    shares.sort_by(|a, b| b.total_cmp(a));
    let mut acc = 0.0;
    for (i, share) in shares.iter().enumerate() {
        acc += share;
        if acc > threshold {
            return Ok(Some(i + 1));
        }
    }
    Ok(None)
}

/// The Gini coefficient of the share distribution, in `[0, 1)`: 0 for
/// perfectly equal shares, approaching 1 for total concentration.
/// Zero-probability configurations count as members of the population
/// (an unused configuration is a maximally poor one).
#[must_use]
pub fn gini_coefficient(p: &Distribution) -> f64 {
    let mut shares: Vec<f64> = p.probabilities().to_vec();
    shares.sort_by(f64::total_cmp);
    let n = shares.len() as f64;
    if shares.len() <= 1 {
        return 0.0;
    }
    // G = (2 Σ_i i·x_i) / (n Σ x_i) − (n + 1)/n, with 1-based ranks over
    // ascending shares and Σ x_i = 1.
    let weighted: f64 = shares
        .iter()
        .enumerate()
        .map(|(i, &x)| (i as f64 + 1.0) * x)
        .sum();
    (2.0 * weighted) / n - (n + 1.0) / n
}

/// The combined share of the `k` largest configurations.
///
/// # Example
///
/// ```
/// use fi_entropy::{metrics::top_k_share, Distribution};
/// let p = Distribution::from_weights(&[50.0, 30.0, 15.0, 5.0])?;
/// assert!((top_k_share(&p, 2) - 0.8).abs() < 1e-12);
/// assert_eq!(top_k_share(&p, 0), 0.0);
/// assert!((top_k_share(&p, 99) - 1.0).abs() < 1e-12);
/// # Ok::<(), fi_entropy::DistributionError>(())
/// ```
#[must_use]
pub fn top_k_share(p: &Distribution, k: usize) -> f64 {
    let mut shares: Vec<f64> = p.probabilities().to_vec();
    shares.sort_by(|a, b| b.total_cmp(a));
    shares.iter().take(k).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bitcoin;

    fn close(a: f64, b: f64) -> bool {
        (a - b).abs() < 1e-9
    }

    #[test]
    fn nakamoto_coefficient_uniform() {
        let u = Distribution::uniform(10).unwrap();
        // Six of ten uniform shares are needed to exceed half.
        assert_eq!(nakamoto_coefficient(&u, 0.5).unwrap(), Some(6));
        assert_eq!(nakamoto_coefficient(&u, 0.0).unwrap(), Some(1));
        assert_eq!(nakamoto_coefficient(&u, 1.0).unwrap(), None);
    }

    #[test]
    fn nakamoto_coefficient_rejects_bad_threshold() {
        let u = Distribution::uniform(3).unwrap();
        assert!(nakamoto_coefficient(&u, -0.1).is_err());
        assert!(nakamoto_coefficient(&u, 1.5).is_err());
        assert!(nakamoto_coefficient(&u, f64::NAN).is_err());
    }

    #[test]
    fn nakamoto_coefficient_of_bitcoin_pools() {
        // 34.2 + 20.0 = 54.2 > 50: two pools control Bitcoin's majority —
        // the oligopoly in one number.
        let pools = bitcoin::example1_distribution();
        assert_eq!(nakamoto_coefficient(&pools, 0.5).unwrap(), Some(2));
        // One pool alone crosses the BFT 1/3 threshold.
        assert_eq!(nakamoto_coefficient(&pools, 1.0 / 3.0).unwrap(), Some(1));
    }

    #[test]
    fn gini_bounds_and_extremes() {
        assert_eq!(gini_coefficient(&Distribution::uniform(1).unwrap()), 0.0);
        assert!(close(
            gini_coefficient(&Distribution::uniform(50).unwrap()),
            0.0
        ));
        let concentrated = Distribution::degenerate(50, 0).unwrap();
        let g = gini_coefficient(&concentrated);
        assert!(g > 0.97 && g < 1.0, "gini = {g}");
    }

    #[test]
    fn gini_of_bitcoin_pools_shows_inequality() {
        let pools = bitcoin::example1_distribution();
        let g = gini_coefficient(&pools);
        assert!(g > 0.5 && g < 0.9, "gini = {g}");
    }

    #[test]
    fn gini_is_scale_free() {
        let a = Distribution::from_weights(&[1.0, 2.0, 3.0]).unwrap();
        let b = Distribution::from_weights(&[10.0, 20.0, 30.0]).unwrap();
        assert!(close(gini_coefficient(&a), gini_coefficient(&b)));
    }

    #[test]
    fn top_k_share_matches_paper_statistic() {
        // §III-A: "The top 10 mining pools in Bitcoin in total possess over
        // 96% mining power" — 96.3% of the whole network; 97.1% of the
        // pools-only distribution.
        let pools = bitcoin::example1_distribution();
        let top10 = top_k_share(&pools, 10);
        assert!(top10 > 0.97 && top10 < 0.98, "top10 = {top10}");
        let network = bitcoin::figure1_distribution(100).unwrap();
        let top10_network = top_k_share(&network, 10);
        assert!(top10_network > 0.96 && top10_network < 0.97);
    }

    #[test]
    fn top_k_monotone_in_k() {
        let p = Distribution::from_weights(&[5.0, 4.0, 3.0, 2.0, 1.0]).unwrap();
        for k in 0..5 {
            assert!(top_k_share(&p, k) <= top_k_share(&p, k + 1) + 1e-12);
        }
    }
}
