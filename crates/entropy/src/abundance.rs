//! Configuration abundance (paper §IV-B).
//!
//! "In ecology, abundance has been used to measure the number of individuals
//! found per sample. In this work, we use *configuration abundance* to define
//! the number of individuals per replica configuration, and *relative
//! configuration abundance* to represent the associated percent composition.
//! The former is useful for traditional BFT protocols, where the number of
//! replicas matters. The latter is particularly useful for Bitcoin-like
//! protocols, where the relative configuration abundance represents mining
//! power distribution."

use serde::{Deserialize, Serialize};

use crate::dist::Distribution;
use crate::error::DistributionError;

/// Configuration abundance: how many individual replicas run each
/// configuration `d_i` of the space `D`.
///
/// A classic BFT deployment with one replica per unique configuration is
/// `AbundanceVector::unit(n)`; a permissionless system where the same
/// configuration is operated by `ω` distinct operators has abundance `ω` at
/// that configuration.
///
/// # Example
///
/// ```
/// use fi_entropy::AbundanceVector;
/// let a = AbundanceVector::new(vec![2, 2, 2])?;
/// assert_eq!(a.total_individuals(), 6);
/// assert_eq!(a.uniform_abundance(), Some(2));
/// // Relative abundance is uniform, so entropy is log2(3).
/// assert!((a.relative()?.distribution().shannon_entropy() - 3f64.log2()).abs() < 1e-12);
/// # Ok::<(), fi_entropy::DistributionError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct AbundanceVector {
    counts: Vec<u64>,
}

impl AbundanceVector {
    /// Creates an abundance vector from per-configuration replica counts.
    /// Zero counts are allowed (configurations present in `D` but unused).
    ///
    /// # Errors
    ///
    /// Returns [`DistributionError::Empty`] if `counts` is empty.
    pub fn new(counts: Vec<u64>) -> Result<Self, DistributionError> {
        if counts.is_empty() {
            return Err(DistributionError::Empty);
        }
        Ok(AbundanceVector { counts })
    }

    /// The classic-BFT abundance: `k` configurations, one replica each
    /// ("the configuration abundance is 1 for all configurations", §IV-B).
    ///
    /// # Errors
    ///
    /// Returns [`DistributionError::Empty`] if `k == 0`.
    pub fn unit(k: usize) -> Result<Self, DistributionError> {
        Self::new(vec![1; k])
    }

    /// Uniform abundance `ω` over `k` configurations — the shape required
    /// for (κ,ω)-optimal resilience (Definition 2).
    ///
    /// # Errors
    ///
    /// Returns [`DistributionError::Empty`] if `k == 0`.
    pub fn uniform(k: usize, omega: u64) -> Result<Self, DistributionError> {
        Self::new(vec![omega; k])
    }

    /// The per-configuration counts.
    #[must_use]
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Number of configurations in the space (dimension `k`).
    #[must_use]
    pub fn dimension(&self) -> usize {
        self.counts.len()
    }

    /// Number of configurations with at least one replica.
    #[must_use]
    pub fn support_size(&self) -> usize {
        self.counts.iter().filter(|&&c| c > 0).count()
    }

    /// Total number of individual replicas across all configurations.
    #[must_use]
    pub fn total_individuals(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// If every *used* configuration has the same abundance, returns it
    /// (the `ω` of Definition 2); otherwise `None`.
    #[must_use]
    pub fn uniform_abundance(&self) -> Option<u64> {
        let mut nonzero = self.counts.iter().filter(|&&c| c > 0);
        let first = *nonzero.next()?;
        if nonzero.all(|&c| c == first) {
            Some(first)
        } else {
            None
        }
    }

    /// The relative configuration abundance: per-configuration share of
    /// individuals, as a probability distribution.
    ///
    /// # Errors
    ///
    /// Returns [`DistributionError::ZeroTotalWeight`] if no configuration
    /// has any replicas.
    pub fn relative(&self) -> Result<RelativeAbundance, DistributionError> {
        Ok(RelativeAbundance {
            dist: Distribution::from_counts(&self.counts)?,
        })
    }

    /// Scales every count by `factor` — the "relative configuration
    /// abundance remains identical" branch of Proposition 1. Entropy is
    /// invariant under this operation.
    ///
    /// # Panics
    ///
    /// Panics if a count multiplication overflows `u64`.
    #[must_use]
    pub fn scaled(&self, factor: u64) -> AbundanceVector {
        AbundanceVector {
            counts: self
                .counts
                .iter()
                .map(|&c| c.checked_mul(factor).expect("abundance overflow"))
                .collect(),
        }
    }

    /// Returns a copy with `delta` more replicas at configuration `index` —
    /// the entropy-decreasing branch of Proposition 1 when applied to a
    /// κ-optimal vector.
    ///
    /// # Errors
    ///
    /// Returns [`DistributionError::DimensionMismatch`] if `index` is out of
    /// range.
    pub fn increased(
        &self,
        index: usize,
        delta: u64,
    ) -> Result<AbundanceVector, DistributionError> {
        if index >= self.counts.len() {
            return Err(DistributionError::DimensionMismatch {
                expected: self.counts.len(),
                actual: index,
            });
        }
        let mut counts = self.counts.clone();
        counts[index] = counts[index]
            .checked_add(delta)
            .expect("abundance overflow");
        Ok(AbundanceVector { counts })
    }

    /// Appends configurations with the given counts (growing the space).
    #[must_use]
    pub fn extended(&self, extra: &[u64]) -> AbundanceVector {
        let mut counts = self.counts.clone();
        counts.extend_from_slice(extra);
        AbundanceVector { counts }
    }

    /// Shannon entropy (bits) of the relative abundance; `0.0` for an empty
    /// system.
    #[must_use]
    pub fn entropy_bits(&self) -> f64 {
        self.relative()
            .map(|r| r.distribution().shannon_entropy())
            .unwrap_or(0.0)
    }
}

/// The relative configuration abundance: a [`Distribution`] guaranteed to
/// have come from integer replica counts.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RelativeAbundance {
    dist: Distribution,
}

impl RelativeAbundance {
    /// The underlying probability distribution.
    #[must_use]
    pub fn distribution(&self) -> &Distribution {
        &self.dist
    }

    /// Consumes the wrapper, returning the distribution.
    #[must_use]
    pub fn into_distribution(self) -> Distribution {
        self.dist
    }
}

impl From<RelativeAbundance> for Distribution {
    fn from(r: RelativeAbundance) -> Distribution {
        r.dist
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64) -> bool {
        (a - b).abs() < 1e-12
    }

    #[test]
    fn new_rejects_empty() {
        assert!(AbundanceVector::new(vec![]).is_err());
    }

    #[test]
    fn unit_is_one_each() {
        let a = AbundanceVector::unit(4).unwrap();
        assert_eq!(a.counts(), &[1, 1, 1, 1]);
        assert_eq!(a.uniform_abundance(), Some(1));
        assert_eq!(a.total_individuals(), 4);
    }

    #[test]
    fn uniform_abundance_detection() {
        assert_eq!(
            AbundanceVector::new(vec![3, 3, 0, 3])
                .unwrap()
                .uniform_abundance(),
            Some(3),
            "zero-count configurations do not break omega-uniformity"
        );
        assert_eq!(
            AbundanceVector::new(vec![3, 2, 3])
                .unwrap()
                .uniform_abundance(),
            None
        );
        assert_eq!(
            AbundanceVector::new(vec![0, 0])
                .unwrap()
                .uniform_abundance(),
            None
        );
    }

    #[test]
    fn support_and_dimension() {
        let a = AbundanceVector::new(vec![1, 0, 2]).unwrap();
        assert_eq!(a.dimension(), 3);
        assert_eq!(a.support_size(), 2);
    }

    #[test]
    fn relative_abundance_is_normalized_counts() {
        let a = AbundanceVector::new(vec![1, 3]).unwrap();
        let r = a.relative().unwrap();
        assert!(close(r.distribution().probabilities()[0], 0.25));
        assert!(close(r.distribution().probabilities()[1], 0.75));
    }

    #[test]
    fn relative_of_empty_system_errors() {
        let a = AbundanceVector::new(vec![0, 0]).unwrap();
        assert!(a.relative().is_err());
    }

    #[test]
    fn scaling_preserves_entropy() {
        // Proposition 1's equality branch.
        let a = AbundanceVector::new(vec![2, 5, 3]).unwrap();
        let scaled = a.scaled(7);
        assert!(close(a.entropy_bits(), scaled.entropy_bits()));
        assert_eq!(scaled.total_individuals(), 70);
    }

    #[test]
    fn skewed_increase_decreases_entropy_from_uniform() {
        // Proposition 1's strict branch, from a kappa-optimal start.
        let a = AbundanceVector::uniform(4, 2).unwrap();
        let h0 = a.entropy_bits();
        let bumped = a.increased(0, 3).unwrap();
        assert!(bumped.entropy_bits() < h0);
    }

    #[test]
    fn increased_rejects_out_of_range() {
        let a = AbundanceVector::unit(2).unwrap();
        assert!(a.increased(5, 1).is_err());
    }

    #[test]
    fn extended_grows_dimension() {
        let a = AbundanceVector::unit(2).unwrap().extended(&[0, 4]);
        assert_eq!(a.dimension(), 4);
        assert_eq!(a.total_individuals(), 6);
    }

    #[test]
    fn entropy_of_empty_is_zero() {
        let a = AbundanceVector::new(vec![0]).unwrap();
        assert_eq!(a.entropy_bits(), 0.0);
    }

    #[test]
    fn relative_abundance_converts_into_distribution() {
        let a = AbundanceVector::new(vec![1, 1]).unwrap();
        let d: Distribution = a.relative().unwrap().into();
        assert_eq!(d, Distribution::uniform(2).unwrap());
        let d2 = a.relative().unwrap().into_distribution();
        assert_eq!(d2, d);
    }
}
