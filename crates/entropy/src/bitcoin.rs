//! The paper's Example 1 and Figure 1: best-case entropy of Bitcoin replica
//! diversity.
//!
//! §IV-B, Example 1: "As of 02 February 2023, 17 mining pools in Bitcoin
//! possess 99.13% mining power, where the distribution is (34.239%, 19.981%,
//! 12.997%, 11.348%, 8.826%, 2.619%, 2.037%, 1.649%, 1.358%, 1.261%, 0.78%,
//! 0.68%, 0.68%, 0.39%, 0.10%, 0.10%, 0.10%) … we assume that each of the
//! mining pools has a unique configuration … the rest 0.87% mining power is
//! uniformly distributed to a number of replicas ranging from 1 to 1000."
//!
//! Figure 1 plots the entropy of that family of distributions against the
//! number `x` of residual miners and finds it stays **below 3 bits** — less
//! diverse than a uniform 8-replica BFT system.
//!
//! Power shares are held in exact integer *milli-percent* units
//! (1 unit = 0.001% of total hash power; total = 100 000 units) so the
//! residual split loses nothing to rounding.

use fi_types::VotingPower;
use serde::{Deserialize, Serialize};

use crate::dist::Distribution;
use crate::error::DistributionError;
use crate::shannon::{max_entropy_bits, shannon_entropy_bits};

/// The top-17 Bitcoin mining-pool shares of 2023-02-02, in percent, exactly
/// as printed in the paper's Example 1 (largest first; the head is Foundry
/// USA at 34.239%).
pub const TOP17_SHARES_PERCENT: [f64; 17] = [
    34.239, 19.981, 12.997, 11.348, 8.826, 2.619, 2.037, 1.649, 1.358, 1.261, 0.78, 0.68, 0.68,
    0.39, 0.10, 0.10, 0.10,
];

/// Total power in milli-percent units (0.001% granularity): 100 000 units
/// = 100%.
pub const TOTAL_UNITS: u64 = 100_000;

/// The top-17 shares converted to exact milli-percent units.
///
/// The listed percentages sum to 99.145%; the paper's prose rounds this to
/// "99.13%" and the residual to "0.87%". We keep the listed per-pool values
/// exact and derive the residual as `100% − Σ shares = 0.855%`, which is
/// what the figure's construction requires (shares must sum to 100%).
#[must_use]
pub fn top17_units() -> Vec<u64> {
    TOP17_SHARES_PERCENT
        .iter()
        .map(|&pct| (pct * 1_000.0).round() as u64)
        .collect()
}

/// The residual mining power (everything outside the top 17) in
/// milli-percent units.
#[must_use]
pub fn residual_units() -> u64 {
    TOTAL_UNITS - top17_units().iter().sum::<u64>()
}

/// The Example-1 distribution over exactly the 17 pools (ignoring the
/// residual tail), i.e. the pools renormalized to 1. This is the
/// "oligopoly head" whose entropy pins Figure 1 below 3 bits.
///
/// # Panics
///
/// Never panics: the constants are valid by construction (checked in
/// tests).
#[must_use]
pub fn example1_distribution() -> Distribution {
    Distribution::from_counts(&top17_units()).expect("17 positive pool shares")
}

/// The full-network distribution for a given residual-miner count `x`:
/// 17 pools with the Example-1 shares plus `x` miners sharing the residual
/// 0.855% as evenly as integer units allow (the paper's "uniformly
/// distributed").
///
/// # Errors
///
/// Returns [`DistributionError::Empty`] if `x == 0` — Figure 1's x-axis
/// starts at 1.
pub fn figure1_distribution(x: usize) -> Result<Distribution, DistributionError> {
    if x == 0 {
        return Err(DistributionError::Empty);
    }
    let mut units = top17_units();
    let residual = VotingPower::new(residual_units());
    units.extend(residual.split_even(x).iter().map(|p| p.as_units()));
    Distribution::from_counts(&units)
}

/// One point of the Figure 1 curve.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Figure1Point {
    /// Number of miners the residual 0.855% is split across (the x-axis).
    pub x: usize,
    /// Total miners in the system (`x + 17`).
    pub total_miners: usize,
    /// Best-case entropy in bits (the y-axis).
    pub entropy_bits: f64,
}

/// Generates the Figure 1 curve for `x = 1 ..= max_x` (the paper uses
/// `max_x = 1000`).
///
/// # Errors
///
/// Returns [`DistributionError::Empty`] if `max_x == 0`.
///
/// # Example
///
/// ```
/// use fi_entropy::bitcoin::figure1_curve;
/// let curve = figure1_curve(1000)?;
/// assert_eq!(curve.len(), 1000);
/// // The paper's headline: "the entropy is less than 3" everywhere.
/// assert!(curve.iter().all(|pt| pt.entropy_bits < 3.0));
/// // And it grows monotonically with x (more residual miners = more diversity).
/// assert!(curve.windows(2).all(|w| w[1].entropy_bits >= w[0].entropy_bits));
/// # Ok::<(), fi_entropy::DistributionError>(())
/// ```
pub fn figure1_curve(max_x: usize) -> Result<Vec<Figure1Point>, DistributionError> {
    if max_x == 0 {
        return Err(DistributionError::Empty);
    }
    (1..=max_x)
        .map(|x| {
            let dist = figure1_distribution(x)?;
            Ok(Figure1Point {
                x,
                total_miners: x + TOP17_SHARES_PERCENT.len(),
                entropy_bits: shannon_entropy_bits(&dist),
            })
        })
        .collect()
}

/// The comparison line the paper draws: a classic BFT system with `n`
/// replicas, each with a unique configuration and equal voting power, has
/// entropy `log2 n` (3 bits at `n = 8`).
#[must_use]
pub fn bft_uniform_entropy_bits(n: usize) -> f64 {
    max_entropy_bits(n)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shares_sum_to_listed_total() {
        let sum: f64 = TOP17_SHARES_PERCENT.iter().sum();
        // The paper prints the per-pool values that sum to 99.145 and
        // rounds the total to 99.13 in prose.
        assert!((sum - 99.145).abs() < 1e-9);
    }

    #[test]
    fn units_are_exact() {
        let units = top17_units();
        assert_eq!(units.len(), 17);
        assert_eq!(units[0], 34_239);
        assert_eq!(units[16], 100);
        assert_eq!(units.iter().sum::<u64>() + residual_units(), TOTAL_UNITS);
    }

    #[test]
    fn residual_matches_paper_rounding() {
        // 0.855% exact; the paper's prose says "0.87%".
        assert_eq!(residual_units(), 855);
    }

    #[test]
    fn example1_entropy_is_below_three_bits() {
        // The paper's headline claim for the pools-only view.
        let h = shannon_entropy_bits(&example1_distribution());
        assert!(h < 3.0, "entropy of the 17-pool oligopoly was {h}");
        assert!(h > 2.5, "sanity lower bound, got {h}");
    }

    #[test]
    fn figure1_distribution_shapes() {
        let d = figure1_distribution(101).unwrap();
        assert_eq!(d.dimension(), 118); // "when x=101 … 118 miners" (caption).
        assert!(figure1_distribution(0).is_err());
    }

    #[test]
    fn figure1_curve_stays_below_bft8_line() {
        let curve = figure1_curve(1000).unwrap();
        let bft8 = bft_uniform_entropy_bits(8);
        assert!((bft8 - 3.0).abs() < 1e-12);
        for pt in &curve {
            assert!(
                pt.entropy_bits < bft8,
                "x = {} reached {} bits",
                pt.x,
                pt.entropy_bits
            );
        }
    }

    #[test]
    fn figure1_curve_is_monotone_increasing() {
        let curve = figure1_curve(500).unwrap();
        for w in curve.windows(2) {
            assert!(w[1].entropy_bits >= w[0].entropy_bits - 1e-12);
        }
    }

    #[test]
    fn figure1_endpoints_match_analytic_expectation() {
        let curve = figure1_curve(1000).unwrap();
        let first = curve.first().unwrap();
        let last = curve.last().unwrap();
        // x = 1: one residual miner with 0.855%.
        assert_eq!(first.total_miners, 18);
        assert!(first.entropy_bits > 2.7 && first.entropy_bits < 2.95);
        // x = 1000: the tail adds ~0.14 bits.
        assert_eq!(last.total_miners, 1017);
        assert!(last.entropy_bits > first.entropy_bits);
        assert!(last.entropy_bits < 3.0);
    }

    #[test]
    fn bft_comparison_values() {
        assert_eq!(bft_uniform_entropy_bits(8), 3.0);
        assert_eq!(bft_uniform_entropy_bits(4), 2.0);
        assert!(bft_uniform_entropy_bits(7) < 3.0);
    }

    #[test]
    fn curve_rejects_zero_range() {
        assert!(figure1_curve(0).is_err());
    }
}
