//! Incremental Shannon entropy over integer-weight configuration buckets.
//!
//! Committee selection and diversity monitoring keep asking the same
//! question — *"what is the entropy after moving a little power?"* — and the
//! naive answer rebuilds a distribution and recomputes
//! `H = −Σ p_i log2 p_i` from scratch for every trial: O(k) work plus heap
//! allocations per query. [`EntropyAccumulator`] instead maintains the
//! algebraic identity
//!
//! ```text
//! H = log2 W − S / W,   where   W = Σ_c w_c,   S = Σ_c w_c · log2 w_c
//! ```
//!
//! over the raw (un-normalized) per-configuration weights `w_c`, so that
//! adding, removing, or hypothetically moving weight at one bucket is O(1):
//! only the affected `w_c · log2 w_c` terms of `S` change.
//!
//! The identity follows from `p_c = w_c / W`:
//! `−Σ (w_c/W)·log2(w_c/W) = −Σ (w_c/W)(log2 w_c − log2 W)
//! = log2 W − (Σ w_c log2 w_c)/W`.
//!
//! Two guarantees the hot paths rely on:
//!
//! * **Equivalence.** For any weight vector, [`EntropyAccumulator::entropy_bits`]
//!   agrees with [`crate::shannon_entropy_bits`] on the corresponding
//!   [`Distribution`] to well under `1e-9` (property-tested across random
//!   add/remove sequences).
//! * **Peek/apply consistency.** Every `peek_*` method performs bitwise the
//!   same floating-point operations, in the same order, as the corresponding
//!   mutation followed by [`EntropyAccumulator::entropy_bits`] — so a
//!   selection loop that compares peeked values and then applies the winner
//!   sees no drift between decision and state.

use serde::{Deserialize, Serialize};

use crate::dist::Distribution;
use crate::error::DistributionError;
use crate::shannon::normalized_entropy;

/// `w · log2 w` with the `0 · log 0 := 0` convention.
#[inline]
fn xlog2(w: u64) -> f64 {
    if w == 0 {
        0.0
    } else {
        let x = w as f64;
        x * x.log2()
    }
}

/// Shared final step: `H = log2 W − S/W`, with degenerate cases pinned to
/// exactly `+0.0` (see [`normalized_entropy`]).
#[inline]
fn entropy_of(total: u64, weighted_log_sum: f64, support: usize) -> f64 {
    if support <= 1 {
        // One bucket (or none): H is exactly 0, and computing
        // `log2 W − (W·log2 W)/W` in floats could stray a few ulps negative.
        return 0.0;
    }
    normalized_entropy((total as f64).log2() - weighted_log_sum / total as f64)
}

/// O(1) incremental Shannon entropy over per-configuration power buckets.
///
/// Buckets are dense slots `0..slots()`; callers with sparse configuration
/// indices (e.g. arbitrary candidate configs) map them to slots once up
/// front. All weights are integer power units (see `fi_types::VotingPower`),
/// so add/remove round-trips are exact and the accumulator cannot drift in
/// `W` — only `S` carries floating-point rounding, bounded by one ulp per
/// operation.
///
/// # Example
///
/// ```
/// use fi_entropy::{shannon_entropy_bits, Distribution, EntropyAccumulator};
///
/// let mut acc = EntropyAccumulator::new(3);
/// acc.add(0, 50);
/// acc.add(1, 30);
/// acc.add(2, 20);
///
/// // Exact equivalence with the batch computation.
/// let exact = shannon_entropy_bits(&Distribution::from_counts(&[50, 30, 20])?);
/// assert!((acc.entropy_bits() - exact).abs() < 1e-12);
///
/// // O(1) what-if evaluation without mutating:
/// let peeked = acc.peek_add(2, 30);
/// acc.add(2, 30);
/// assert_eq!(peeked, acc.entropy_bits());
/// # Ok::<(), fi_entropy::DistributionError>(())
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EntropyAccumulator {
    weights: Vec<u64>,
    total: u64,
    weighted_log_sum: f64,
    support: usize,
}

impl EntropyAccumulator {
    /// An accumulator with `slots` empty buckets.
    #[must_use]
    pub fn new(slots: usize) -> Self {
        EntropyAccumulator {
            weights: vec![0; slots],
            total: 0,
            weighted_log_sum: 0.0,
            support: 0,
        }
    }

    /// An accumulator seeded with one bucket per entry of `weights`.
    ///
    /// # Example
    ///
    /// ```
    /// use fi_entropy::EntropyAccumulator;
    /// let acc = EntropyAccumulator::from_weights(&[1, 1, 1, 1]);
    /// assert!((acc.entropy_bits() - 2.0).abs() < 1e-12);
    /// ```
    #[must_use]
    pub fn from_weights(weights: &[u64]) -> Self {
        let mut acc = EntropyAccumulator::new(weights.len());
        for (slot, &w) in weights.iter().enumerate() {
            acc.add(slot, w);
        }
        acc
    }

    /// Number of buckets (zero-weight buckets included).
    #[must_use]
    pub fn slots(&self) -> usize {
        self.weights.len()
    }

    /// Appends an empty bucket, returning its slot index.
    pub fn push_slot(&mut self) -> usize {
        self.weights.push(0);
        self.weights.len() - 1
    }

    /// Inserts a bucket holding `w` at position `at`, shifting later slots
    /// up by one. O(slots) for the shift; the entropy state updates in
    /// O(1). This is the differential-sealing primitive: a canonical
    /// sorted-bucket layout gains a row without rebuilding the accumulator.
    ///
    /// # Panics
    ///
    /// Panics if `at > slots()` or the total would overflow `u64`.
    pub fn insert_slot(&mut self, at: usize, w: u64) {
        assert!(
            at <= self.weights.len(),
            "slot insertion at {at} out of range for {} slots",
            self.weights.len()
        );
        self.weights.insert(at, w);
        if w > 0 {
            self.total = self
                .total
                .checked_add(w)
                .expect("entropy accumulator total overflowed u64");
            self.weighted_log_sum += xlog2(w);
            self.support += 1;
        }
    }

    /// Removes the bucket at position `at` entirely (weight and slot),
    /// shifting later slots down by one and returning the removed weight.
    /// O(slots) for the shift; the entropy state updates in O(1).
    ///
    /// Like [`remove`](Self::remove), the `S` update is a floating-point
    /// subtraction, so long remove histories accumulate ulp-level drift —
    /// bounded by the same `1e-9` envelope the differential suites pin, and
    /// re-zeroed whenever the owner rebuilds from
    /// [`from_weights`](Self::from_weights).
    ///
    /// # Panics
    ///
    /// Panics if `at` is out of range.
    pub fn remove_slot(&mut self, at: usize) -> u64 {
        assert!(
            at < self.weights.len(),
            "slot removal at {at} out of range for {} slots",
            self.weights.len()
        );
        let w = self.weights.remove(at);
        if w > 0 {
            self.total -= w;
            self.weighted_log_sum -= xlog2(w);
            self.support -= 1;
        }
        w
    }

    /// The weight currently in `slot`.
    ///
    /// # Panics
    ///
    /// Panics if `slot` is out of range.
    #[must_use]
    pub fn weight(&self, slot: usize) -> u64 {
        self.weights[slot]
    }

    /// Total weight `W` across all buckets.
    #[must_use]
    pub fn total_weight(&self) -> u64 {
        self.total
    }

    /// Number of buckets with positive weight (the realised κ).
    #[must_use]
    pub fn support_size(&self) -> usize {
        self.support
    }

    /// The maintained `S = Σ_c w_c · log2 w_c` term. Together with
    /// [`total_weight`](Self::total_weight) and
    /// [`support_size`](Self::support_size) this fully determines
    /// [`entropy_bits`](Self::entropy_bits); selection engines that bracket
    /// the analytic entropy peak of "add power `p` to one bucket" need the
    /// raw sum, not just the folded `H`.
    #[must_use]
    pub fn weighted_log_sum(&self) -> f64 {
        self.weighted_log_sum
    }

    /// Adds `w` units of weight to `slot` in O(1).
    ///
    /// # Panics
    ///
    /// Panics if `slot` is out of range or the bucket/total would overflow
    /// `u64` (always a logic error in an experiment, mirroring
    /// `fi_types::VotingPower` arithmetic).
    pub fn add(&mut self, slot: usize, w: u64) {
        if w == 0 {
            return;
        }
        let old = self.weights[slot];
        let new = old
            .checked_add(w)
            .expect("entropy accumulator bucket overflowed u64");
        self.total = self
            .total
            .checked_add(w)
            .expect("entropy accumulator total overflowed u64");
        self.weighted_log_sum = self.weighted_log_sum - xlog2(old) + xlog2(new);
        self.support += usize::from(old == 0);
        self.weights[slot] = new;
    }

    /// Removes `w` units of weight from `slot` in O(1).
    ///
    /// # Panics
    ///
    /// Panics if `slot` is out of range or holds less than `w`.
    pub fn remove(&mut self, slot: usize, w: u64) {
        if w == 0 {
            return;
        }
        let old = self.weights[slot];
        assert!(
            w <= old,
            "entropy accumulator underflow: removing {w} from bucket {slot} holding {old}"
        );
        let new = old - w;
        self.total -= w;
        self.weighted_log_sum = self.weighted_log_sum - xlog2(old) + xlog2(new);
        self.support -= usize::from(new == 0);
        self.weights[slot] = new;
    }

    /// Moves `w` units from bucket `from` to bucket `to` in O(1) (a replica
    /// migration: total power is conserved).
    ///
    /// # Panics
    ///
    /// As [`add`](Self::add) / [`remove`](Self::remove).
    pub fn apply_move(&mut self, from: usize, to: usize, w: u64) {
        if from == to {
            return;
        }
        self.remove(from, w);
        self.add(to, w);
    }

    /// Current entropy `H = log2 W − S/W` in bits; exactly `+0.0` for empty
    /// or single-configuration states.
    #[must_use]
    pub fn entropy_bits(&self) -> f64 {
        entropy_of(self.total, self.weighted_log_sum, self.support)
    }

    /// Entropy after hypothetically adding `w` at `slot`, in O(1), without
    /// mutating. Bitwise equal to calling [`add`](Self::add) followed by
    /// [`entropy_bits`](Self::entropy_bits).
    ///
    /// # Panics
    ///
    /// Panics if `slot` is out of range or the addition would overflow.
    #[must_use]
    pub fn peek_add(&self, slot: usize, w: u64) -> f64 {
        if w == 0 {
            return self.entropy_bits();
        }
        let old = self.weights[slot];
        let new = old
            .checked_add(w)
            .expect("entropy accumulator bucket overflowed u64");
        let total = self
            .total
            .checked_add(w)
            .expect("entropy accumulator total overflowed u64");
        let s = self.weighted_log_sum - xlog2(old) + xlog2(new);
        let support = self.support + usize::from(old == 0);
        entropy_of(total, s, support)
    }

    /// Entropy after hypothetically removing `w` from `slot`, in O(1),
    /// without mutating. Bitwise equal to [`remove`](Self::remove) followed
    /// by [`entropy_bits`](Self::entropy_bits).
    ///
    /// # Panics
    ///
    /// Panics if `slot` is out of range or holds less than `w`.
    #[must_use]
    pub fn peek_remove(&self, slot: usize, w: u64) -> f64 {
        if w == 0 {
            return self.entropy_bits();
        }
        let old = self.weights[slot];
        assert!(
            w <= old,
            "entropy accumulator underflow: removing {w} from bucket {slot} holding {old}"
        );
        let new = old - w;
        let total = self.total - w;
        let s = self.weighted_log_sum - xlog2(old) + xlog2(new);
        let support = self.support - usize::from(new == 0);
        entropy_of(total, s, support)
    }

    /// Entropy after hypothetically moving `w` units from `from` to `to`,
    /// in O(1), without mutating. Bitwise equal to
    /// [`apply_move`](Self::apply_move) followed by
    /// [`entropy_bits`](Self::entropy_bits). This is the reconfiguration
    /// recommender's inner-loop query.
    ///
    /// # Panics
    ///
    /// As [`apply_move`](Self::apply_move).
    #[must_use]
    pub fn peek_move(&self, from: usize, to: usize, w: u64) -> f64 {
        if from == to || w == 0 {
            return self.entropy_bits();
        }
        let old_from = self.weights[from];
        assert!(
            w <= old_from,
            "entropy accumulator underflow: moving {w} from bucket {from} holding {old_from}"
        );
        let new_from = old_from - w;
        let old_to = self.weights[to];
        let new_to = old_to
            .checked_add(w)
            .expect("entropy accumulator bucket overflowed u64");
        let s = self.weighted_log_sum - xlog2(old_from) + xlog2(new_from) - xlog2(old_to)
            + xlog2(new_to);
        let support = self.support - usize::from(new_from == 0) + usize::from(old_to == 0);
        entropy_of(self.total, s, support)
    }

    /// Entropy with one extra, hypothetical bucket of weight `w` appended —
    /// the "all unattested power as one opaque configuration" reading of the
    /// two-tier registry, in O(1).
    #[must_use]
    pub fn entropy_with_extra_bucket(&self, w: u64) -> f64 {
        if w == 0 {
            return self.entropy_bits();
        }
        let total = self
            .total
            .checked_add(w)
            .expect("entropy accumulator total overflowed u64");
        let s = self.weighted_log_sum + xlog2(w);
        entropy_of(total, s, self.support + 1)
    }

    /// The accumulator's state as a validated [`Distribution`] (for the
    /// batch metrics: Rényi entropies, evenness, κ-optimality, …).
    ///
    /// # Errors
    ///
    /// Returns [`DistributionError::Empty`] for a slot-less accumulator and
    /// [`DistributionError::ZeroTotalWeight`] when all buckets are empty.
    pub fn to_distribution(&self) -> Result<Distribution, DistributionError> {
        Distribution::from_counts(&self.weights)
    }
}

/// One-pass power-weighted entropy of raw bucket weights via the same
/// `log2 W − S/W` identity: no allocation, no [`Distribution`] construction,
/// zero weights inert. This is what cached committee entropy is built from.
///
/// # Example
///
/// ```
/// use fi_entropy::incremental::weighted_entropy_bits;
/// let h = weighted_entropy_bits([50u64, 30, 20, 0]);
/// assert!(h > 0.0 && h < 2.0);
/// assert_eq!(weighted_entropy_bits([7u64]), 0.0);
/// assert_eq!(weighted_entropy_bits(std::iter::empty::<u64>()), 0.0);
/// ```
///
/// # Panics
///
/// Panics if the total weight overflows `u64`.
#[must_use]
pub fn weighted_entropy_bits<I: IntoIterator<Item = u64>>(weights: I) -> f64 {
    let mut total = 0u64;
    let mut s = 0.0;
    let mut support = 0usize;
    for w in weights {
        if w > 0 {
            total = total
                .checked_add(w)
                .expect("entropy weight total overflowed u64");
            s += xlog2(w);
            support += 1;
        }
    }
    entropy_of(total, s, support)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shannon::shannon_entropy_bits;

    fn naive(weights: &[u64]) -> f64 {
        match Distribution::from_counts(weights) {
            Ok(d) => shannon_entropy_bits(&d),
            Err(_) => 0.0,
        }
    }

    #[test]
    fn empty_accumulator_is_zero_entropy() {
        let acc = EntropyAccumulator::new(4);
        assert_eq!(acc.entropy_bits(), 0.0);
        assert!(acc.entropy_bits().is_sign_positive());
        assert_eq!(acc.total_weight(), 0);
        assert_eq!(acc.support_size(), 0);
        assert_eq!(acc.slots(), 4);
    }

    #[test]
    fn matches_naive_on_basic_vectors() {
        for weights in [
            vec![1u64, 1, 1, 1],
            vec![50, 30, 20],
            vec![1_000_000, 1],
            vec![0, 5, 0, 5],
            vec![7],
            vec![0, 0, 3],
        ] {
            let acc = EntropyAccumulator::from_weights(&weights);
            let h = acc.entropy_bits();
            assert!(
                (h - naive(&weights)).abs() < 1e-12,
                "weights {weights:?}: {h} vs {}",
                naive(&weights)
            );
        }
    }

    #[test]
    fn single_bucket_is_exactly_positive_zero() {
        let mut acc = EntropyAccumulator::new(2);
        acc.add(0, 123_456);
        let h = acc.entropy_bits();
        assert_eq!(h, 0.0);
        assert!(h.is_sign_positive(), "must not be -0.0");
    }

    #[test]
    fn add_remove_round_trip_restores_entropy() {
        let mut acc = EntropyAccumulator::from_weights(&[10, 20, 30]);
        let before = acc.entropy_bits();
        acc.add(1, 17);
        acc.remove(1, 17);
        // W is integer-exact; S sees two symmetric updates.
        assert!((acc.entropy_bits() - before).abs() < 1e-12);
        assert_eq!(acc.total_weight(), 60);
    }

    #[test]
    fn peek_add_is_bitwise_equal_to_add() {
        let mut acc = EntropyAccumulator::from_weights(&[5, 0, 9]);
        for (slot, w) in [(1, 4), (0, 1), (2, 100)] {
            let peek = acc.peek_add(slot, w);
            acc.add(slot, w);
            assert_eq!(peek.to_bits(), acc.entropy_bits().to_bits());
        }
    }

    #[test]
    fn peek_remove_is_bitwise_equal_to_remove() {
        let mut acc = EntropyAccumulator::from_weights(&[5, 4, 9]);
        for (slot, w) in [(1, 4), (0, 2), (2, 3)] {
            let peek = acc.peek_remove(slot, w);
            acc.remove(slot, w);
            assert_eq!(peek.to_bits(), acc.entropy_bits().to_bits());
        }
    }

    #[test]
    fn peek_move_is_bitwise_equal_to_apply_move() {
        let mut acc = EntropyAccumulator::from_weights(&[50, 30, 20, 0]);
        for (from, to, w) in [(0, 3, 25), (1, 2, 30), (2, 0, 1)] {
            let peek = acc.peek_move(from, to, w);
            acc.apply_move(from, to, w);
            assert_eq!(peek.to_bits(), acc.entropy_bits().to_bits());
            assert_eq!(acc.total_weight(), 100, "moves conserve power");
        }
    }

    #[test]
    fn move_to_same_slot_is_identity() {
        let mut acc = EntropyAccumulator::from_weights(&[3, 7]);
        let before = acc.entropy_bits();
        assert_eq!(acc.peek_move(1, 1, 5), before);
        acc.apply_move(1, 1, 5);
        assert_eq!(acc.entropy_bits(), before);
        assert_eq!(acc.weight(1), 7);
    }

    #[test]
    fn extra_bucket_matches_padded_naive() {
        let acc = EntropyAccumulator::from_weights(&[60, 40]);
        let h = acc.entropy_with_extra_bucket(100);
        assert!((h - naive(&[60, 40, 100])).abs() < 1e-12);
        assert_eq!(acc.entropy_with_extra_bucket(0), acc.entropy_bits());
        // The hypothetical bucket does not mutate the accumulator.
        assert_eq!(acc.slots(), 2);
        assert_eq!(acc.total_weight(), 100);
    }

    #[test]
    fn push_slot_grows_without_changing_entropy() {
        let mut acc = EntropyAccumulator::from_weights(&[1, 1]);
        let before = acc.entropy_bits();
        let slot = acc.push_slot();
        assert_eq!(slot, 2);
        assert_eq!(acc.entropy_bits(), before);
        acc.add(slot, 1);
        assert!((acc.entropy_bits() - 3f64.log2()).abs() < 1e-12);
    }

    #[test]
    fn insert_slot_matches_from_weights() {
        let mut acc = EntropyAccumulator::from_weights(&[10, 30]);
        acc.insert_slot(1, 20);
        let rebuilt = EntropyAccumulator::from_weights(&[10, 20, 30]);
        assert_eq!(acc.slots(), 3);
        assert_eq!(acc.weight(1), 20);
        assert_eq!(acc.total_weight(), rebuilt.total_weight());
        assert_eq!(acc.support_size(), rebuilt.support_size());
        assert!((acc.entropy_bits() - rebuilt.entropy_bits()).abs() < 1e-12);
        // Zero-weight insertion changes layout but not entropy state.
        let before = acc.entropy_bits();
        acc.insert_slot(0, 0);
        assert_eq!(acc.slots(), 4);
        assert_eq!(acc.entropy_bits().to_bits(), before.to_bits());
        assert_eq!(acc.total_weight(), 60);
    }

    #[test]
    fn remove_slot_matches_from_weights() {
        let mut acc = EntropyAccumulator::from_weights(&[10, 20, 30, 0]);
        assert_eq!(acc.remove_slot(1), 20);
        let rebuilt = EntropyAccumulator::from_weights(&[10, 30, 0]);
        assert_eq!(acc.slots(), 3);
        assert_eq!(acc.weight(1), 30);
        assert_eq!(acc.total_weight(), rebuilt.total_weight());
        assert_eq!(acc.support_size(), rebuilt.support_size());
        assert!((acc.entropy_bits() - rebuilt.entropy_bits()).abs() < 1e-12);
        // Removing a zero-weight slot leaves the entropy state untouched.
        let before = acc.entropy_bits();
        assert_eq!(acc.remove_slot(2), 0);
        assert_eq!(acc.entropy_bits().to_bits(), before.to_bits());
    }

    #[test]
    fn slot_splice_round_trip_restores_state() {
        let mut acc = EntropyAccumulator::from_weights(&[7, 5, 11]);
        let before = acc.entropy_bits();
        acc.insert_slot(2, 9);
        assert_eq!(acc.remove_slot(2), 9);
        assert_eq!(acc.slots(), 3);
        assert_eq!(acc.total_weight(), 23);
        assert!((acc.entropy_bits() - before).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn insert_slot_past_end_panics() {
        let mut acc = EntropyAccumulator::from_weights(&[1]);
        acc.insert_slot(2, 1);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn remove_slot_past_end_panics() {
        let mut acc = EntropyAccumulator::from_weights(&[1]);
        let _ = acc.remove_slot(1);
    }

    #[test]
    fn zero_weight_operations_are_inert() {
        let mut acc = EntropyAccumulator::from_weights(&[5, 5]);
        let before = acc.entropy_bits();
        acc.add(0, 0);
        acc.remove(1, 0);
        assert_eq!(acc.entropy_bits(), before);
        assert_eq!(acc.peek_add(0, 0), before);
        assert_eq!(acc.peek_remove(0, 0), before);
        assert_eq!(acc.peek_move(0, 1, 0), before);
    }

    #[test]
    fn to_distribution_round_trips() {
        let acc = EntropyAccumulator::from_weights(&[3, 1, 0]);
        let d = acc.to_distribution().unwrap();
        assert_eq!(d.dimension(), 3);
        assert!((d.shannon_entropy() - acc.entropy_bits()).abs() < 1e-12);
        assert!(EntropyAccumulator::new(0).to_distribution().is_err());
        assert!(EntropyAccumulator::new(3).to_distribution().is_err());
    }

    #[test]
    fn weighted_log_sum_tracks_the_identity() {
        let weights = [13u64, 0, 8, 21, 1];
        let acc = EntropyAccumulator::from_weights(&weights);
        let expected: f64 = weights.iter().map(|&w| xlog2(w)).sum();
        assert!((acc.weighted_log_sum() - expected).abs() < 1e-9);
        // H = log2 W − S/W reconstructs bit-for-bit through the shared fold.
        let h = entropy_of(
            acc.total_weight(),
            acc.weighted_log_sum(),
            acc.support_size(),
        );
        assert_eq!(h.to_bits(), acc.entropy_bits().to_bits());
    }

    #[test]
    fn weighted_entropy_bits_matches_accumulator() {
        let weights = [13u64, 0, 8, 21, 1];
        let acc = EntropyAccumulator::from_weights(&weights);
        let h = weighted_entropy_bits(weights);
        assert_eq!(h.to_bits(), acc.entropy_bits().to_bits());
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn remove_more_than_present_panics() {
        let mut acc = EntropyAccumulator::from_weights(&[3]);
        acc.remove(0, 4);
    }

    #[test]
    fn never_negative_zero_after_churn() {
        let mut acc = EntropyAccumulator::new(2);
        acc.add(0, 10);
        acc.add(1, 10);
        acc.remove(1, 10);
        let h = acc.entropy_bits();
        assert_eq!(h, 0.0);
        assert!(h.is_sign_positive(), "degenerate entropy must be +0.0");
    }
}
