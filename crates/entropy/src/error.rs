//! Error types for `fi-entropy`.

use core::fmt;

/// Errors from constructing or manipulating probability distributions.
#[derive(Debug, Clone, PartialEq)]
pub enum DistributionError {
    /// The input was empty; a distribution needs at least one outcome.
    Empty,
    /// A probability (or weight) was negative or non-finite.
    InvalidProbability {
        /// Index of the offending entry.
        index: usize,
        /// The offending value.
        value: f64,
    },
    /// Probabilities did not sum to 1 within tolerance.
    NotNormalized {
        /// The actual sum of the input probabilities.
        sum: f64,
    },
    /// All weights were zero, so no distribution can be derived.
    ZeroTotalWeight,
    /// Two distributions (or an index) had mismatched dimensions.
    DimensionMismatch {
        /// Expected dimension.
        expected: usize,
        /// Actual dimension.
        actual: usize,
    },
}

impl fmt::Display for DistributionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DistributionError::Empty => {
                write!(f, "distribution requires at least one outcome")
            }
            DistributionError::InvalidProbability { index, value } => {
                write!(
                    f,
                    "invalid probability {value} at index {index}: must be finite and non-negative"
                )
            }
            DistributionError::NotNormalized { sum } => {
                write!(f, "probabilities sum to {sum}, expected 1")
            }
            DistributionError::ZeroTotalWeight => {
                write!(f, "all weights are zero; cannot normalize")
            }
            DistributionError::DimensionMismatch { expected, actual } => {
                write!(f, "dimension mismatch: expected {expected}, got {actual}")
            }
        }
    }
}

impl std::error::Error for DistributionError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn implements_std_error_send_sync() {
        fn check<E: std::error::Error + Send + Sync + 'static>() {}
        check::<DistributionError>();
    }

    #[test]
    fn display_messages() {
        assert!(DistributionError::Empty
            .to_string()
            .contains("at least one"));
        assert!(DistributionError::NotNormalized { sum: 0.9 }
            .to_string()
            .contains("0.9"));
    }
}
