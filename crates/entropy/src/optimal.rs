//! Definition 1 (κ-optimal fault independence) and Definition 2
//! ((κ,ω)-optimal resilience) as checkable predicates.
//!
//! Paper §IV-A:
//!
//! > **Definition 1** (κ-optimal fault independence). For all κ ≤ k, a
//! > replica configuration distribution `p = (p_1, …, p_k)` achieves
//! > κ-optimal fault independence iff: `|p′| = κ` where
//! > `p′ = {∀ p_i ∈ p : p_i ≠ 0}`; and `∀ p_i, p_j ∈ p′, p_i = p_j`.
//!
//! Paper §IV-B:
//!
//! > **Definition 2** ((κ,ω)-optimal resilience). A system is (κ,ω)-optimal
//! > resilience if it is κ-optimal fault independence with configuration
//! > abundance of ω.

use serde::{Deserialize, Serialize};

use crate::abundance::AbundanceVector;
use crate::dist::Distribution;
use crate::shannon::{max_entropy_bits, shannon_entropy_bits};

/// Default tolerance when comparing floating-point probability shares for
/// the equality condition of Definition 1.
pub const DEFAULT_TOLERANCE: f64 = 1e-9;

/// The verdict of checking a distribution against Definition 1.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KappaOptimality {
    kappa: usize,
    uniform_on_support: bool,
    entropy_bits: f64,
    entropy_deficit_bits: f64,
}

impl KappaOptimality {
    /// Checks a distribution against Definition 1 with tolerance `tol`.
    ///
    /// The result records the realised `κ` (support size), whether the
    /// support is uniform, the achieved entropy, and the *entropy deficit*
    /// `log2 κ − H(p) ≥ 0` — how far the system is from the best
    /// fault independence achievable with its current number of used
    /// configurations.
    #[must_use]
    pub fn check(p: &Distribution, tol: f64) -> KappaOptimality {
        let kappa = p.support_size();
        let uniform = p.is_uniform_on_support(tol);
        let h = shannon_entropy_bits(p);
        KappaOptimality {
            kappa,
            uniform_on_support: uniform,
            entropy_bits: h,
            entropy_deficit_bits: (max_entropy_bits(kappa) - h).max(0.0),
        }
    }

    /// The realised number of used configurations `κ = |p′|`.
    #[must_use]
    pub fn kappa(&self) -> usize {
        self.kappa
    }

    /// `true` iff the distribution achieves κ-optimal fault independence
    /// for its own support size.
    #[must_use]
    pub fn is_optimal(&self) -> bool {
        self.uniform_on_support && self.kappa > 0
    }

    /// `true` iff the distribution is κ-optimal *for the given κ*
    /// (Definition 1 quantifies over a chosen κ ≤ k).
    #[must_use]
    pub fn is_optimal_for(&self, kappa: usize) -> bool {
        self.is_optimal() && self.kappa == kappa
    }

    /// The achieved Shannon entropy in bits.
    #[must_use]
    pub fn entropy_bits(&self) -> f64 {
        self.entropy_bits
    }

    /// `log2 κ − H(p)`: zero iff κ-optimal.
    #[must_use]
    pub fn entropy_deficit_bits(&self) -> f64 {
        self.entropy_deficit_bits
    }
}

/// Convenience wrapper: does `p` achieve κ-optimal fault independence for
/// the specific `kappa`?
///
/// # Example
///
/// ```
/// use fi_entropy::{optimal::is_kappa_optimal, Distribution};
/// let p = Distribution::from_weights(&[1.0, 1.0, 0.0, 1.0])?;
/// assert!(is_kappa_optimal(&p, 3));
/// assert!(!is_kappa_optimal(&p, 4));
/// # Ok::<(), fi_entropy::DistributionError>(())
/// ```
#[must_use]
pub fn is_kappa_optimal(p: &Distribution, kappa: usize) -> bool {
    KappaOptimality::check(p, DEFAULT_TOLERANCE).is_optimal_for(kappa)
}

/// The verdict of checking an abundance vector against Definition 2.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OptimalResilience {
    kappa: usize,
    omega: Option<u64>,
    kappa_optimal: bool,
}

impl OptimalResilience {
    /// Checks Definition 2 for an abundance vector: the relative abundance
    /// must be κ-optimal *and* every used configuration must have the same
    /// abundance ω.
    ///
    /// For integer abundances the two conditions coincide on the support
    /// (equal counts ⇒ equal shares), but the check is stated separately to
    /// match the paper and to stay meaningful when callers weight abundance
    /// by non-uniform per-replica power.
    #[must_use]
    pub fn check(a: &AbundanceVector) -> OptimalResilience {
        let omega = a.uniform_abundance();
        let kappa = a.support_size();
        let kappa_optimal = match a.relative() {
            Ok(rel) => KappaOptimality::check(rel.distribution(), DEFAULT_TOLERANCE).is_optimal(),
            Err(_) => false,
        };
        OptimalResilience {
            kappa,
            omega,
            kappa_optimal,
        }
    }

    /// The realised κ (used configurations).
    #[must_use]
    pub fn kappa(&self) -> usize {
        self.kappa
    }

    /// The realised ω, if abundance is uniform across used configurations.
    #[must_use]
    pub fn omega(&self) -> Option<u64> {
        self.omega
    }

    /// `true` iff the system is (κ,ω)-optimal for *some* κ and ω.
    #[must_use]
    pub fn is_optimal(&self) -> bool {
        self.kappa_optimal && self.omega.is_some() && self.kappa > 0
    }

    /// `true` iff the system is exactly (κ,ω)-optimal for the given values.
    #[must_use]
    pub fn is_optimal_for(&self, kappa: usize, omega: u64) -> bool {
        self.is_optimal() && self.kappa == kappa && self.omega == Some(omega)
    }
}

/// Is the abundance vector (κ,ω)-optimally resilient for the given
/// parameters (Definition 2)?
///
/// # Example
///
/// ```
/// use fi_entropy::{optimal::is_kappa_omega_optimal, AbundanceVector};
/// let a = AbundanceVector::uniform(5, 3)?;
/// assert!(is_kappa_omega_optimal(&a, 5, 3));
/// assert!(!is_kappa_omega_optimal(&a, 5, 1));
/// # Ok::<(), fi_entropy::DistributionError>(())
/// ```
#[must_use]
pub fn is_kappa_omega_optimal(a: &AbundanceVector, kappa: usize, omega: u64) -> bool {
    OptimalResilience::check(a).is_optimal_for(kappa, omega)
}

/// The κ-optimal distribution closest to `p` that keeps `p`'s support:
/// uniform over `support(p)`, zero elsewhere. This is the target a
/// diversity manager should steer toward without forcing replicas onto new
/// configurations.
#[must_use]
pub fn nearest_kappa_optimal(p: &Distribution) -> Distribution {
    let support: Vec<usize> = p.support().map(|(i, _)| i).collect();
    if support.is_empty() {
        return p.clone();
    }
    let share = 1.0 / support.len() as f64;
    let mut probs = vec![0.0; p.dimension()];
    for i in support {
        probs[i] = share;
    }
    Distribution::from_probabilities(probs).expect("uniform-on-support is a valid distribution")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_is_kappa_optimal() {
        let p = Distribution::uniform(6).unwrap();
        let check = KappaOptimality::check(&p, DEFAULT_TOLERANCE);
        assert!(check.is_optimal());
        assert!(check.is_optimal_for(6));
        assert!(!check.is_optimal_for(5));
        assert!(check.entropy_deficit_bits() < 1e-12);
    }

    #[test]
    fn zeros_do_not_break_optimality() {
        // Definition 1 quantifies over the support p' only.
        let p = Distribution::from_weights(&[1.0, 0.0, 1.0, 0.0]).unwrap();
        assert!(is_kappa_optimal(&p, 2));
    }

    #[test]
    fn skew_breaks_optimality_and_shows_deficit() {
        let p = Distribution::from_weights(&[3.0, 1.0]).unwrap();
        let check = KappaOptimality::check(&p, DEFAULT_TOLERANCE);
        assert!(!check.is_optimal());
        assert!(check.entropy_deficit_bits() > 0.0);
        assert_eq!(check.kappa(), 2);
    }

    #[test]
    fn entropy_accessor_matches_direct_computation() {
        let p = Distribution::from_weights(&[3.0, 1.0]).unwrap();
        let check = KappaOptimality::check(&p, DEFAULT_TOLERANCE);
        assert!((check.entropy_bits() - shannon_entropy_bits(&p)).abs() < 1e-15);
    }

    #[test]
    fn definition2_uniform_abundance() {
        let a = AbundanceVector::uniform(4, 2).unwrap();
        let check = OptimalResilience::check(&a);
        assert!(check.is_optimal());
        assert_eq!(check.kappa(), 4);
        assert_eq!(check.omega(), Some(2));
        assert!(is_kappa_omega_optimal(&a, 4, 2));
    }

    #[test]
    fn definition2_rejects_skewed_abundance() {
        let a = AbundanceVector::new(vec![2, 2, 3]).unwrap();
        let check = OptimalResilience::check(&a);
        assert!(!check.is_optimal());
        assert_eq!(check.omega(), None);
    }

    #[test]
    fn definition2_classic_bft_is_kappa_one_optimal() {
        // "Traditional BFT-SMR systems … the configuration abundance is 1
        // for all configurations" (§IV-B).
        let a = AbundanceVector::unit(7).unwrap();
        assert!(is_kappa_omega_optimal(&a, 7, 1));
    }

    #[test]
    fn definition2_empty_system_not_optimal() {
        let a = AbundanceVector::new(vec![0, 0]).unwrap();
        assert!(!OptimalResilience::check(&a).is_optimal());
    }

    #[test]
    fn nearest_kappa_optimal_uniformizes_support() {
        let p = Distribution::from_weights(&[5.0, 0.0, 1.0]).unwrap();
        let q = nearest_kappa_optimal(&p);
        assert_eq!(q.support_size(), 2);
        assert!(is_kappa_optimal(&q, 2));
        assert_eq!(q.probabilities()[1], 0.0);
    }

    #[test]
    fn nearest_kappa_optimal_fixed_point_on_optimal_input() {
        let p = Distribution::uniform(3).unwrap();
        let q = nearest_kappa_optimal(&p);
        assert!(p.total_variation(&q).unwrap() < 1e-12);
    }
}
