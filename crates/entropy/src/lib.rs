//! # `fi-entropy` — quantifying replica diversity (paper §IV)
//!
//! This crate implements the measurement core of *Fault Independence in
//! Blockchain* (DSN'23):
//!
//! * [`Distribution`] — a validated probability distribution `p = (p_1 … p_k)`
//!   over the replica-configuration space `D = {d_1 … d_k}`;
//! * [`shannon`] — Shannon entropy `H(p) = −Σ p_i log p_i`, evenness, and
//!   effective configuration counts;
//! * [`incremental`] — the [`EntropyAccumulator`]: O(1) add/remove/peek of
//!   power at a configuration bucket via `H = log2 W − S/W`, powering the
//!   selection and monitoring hot paths;
//! * [`renyi`] — the Rényi family (Hartley, collision, min-entropy) and Hill
//!   numbers, which generalise "how many effectively independent
//!   configurations are there";
//! * [`abundance`] — configuration abundance and *relative* configuration
//!   abundance (§IV-B), the ecology-inspired measures the paper uses to
//!   separate permissioned (count matters) from permissionless (share
//!   matters) systems;
//! * [`optimal`] — Definition 1 (κ-optimal fault independence) and
//!   Definition 2 ((κ,ω)-optimal resilience) as checkable predicates;
//! * [`propositions`] — Propositions 1–3 as executable, numerically checked
//!   statements;
//! * [`estimate`] — entropy estimation from sampled configurations
//!   (plug-in and Miller–Madow), for the configuration-discovery pipeline;
//! * [`metrics`] — complementary decentralization metrics (Nakamoto
//!   coefficient, Gini, top-k share) over the same distributions;
//! * [`bitcoin`] — the exact Example-1 mining-pool distribution
//!   (2023-02-02) and the Figure-1 curve generator.
//!
//! ## Quickstart
//!
//! ```
//! use fi_entropy::{bitcoin, Distribution};
//!
//! // The paper's Example 1: 17 pools holding 99.13% of Bitcoin's power.
//! let pools = bitcoin::example1_distribution();
//! let h = pools.shannon_entropy();
//! // "the entropy is less than 3" — paper §IV-B.
//! assert!(h < 3.0);
//!
//! // An 8-replica BFT system with unique configurations reaches 3 bits.
//! let bft = Distribution::uniform(8).unwrap();
//! assert!((bft.shannon_entropy() - 3.0).abs() < 1e-12);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod abundance;
pub mod bitcoin;
pub mod dist;
pub mod error;
pub mod estimate;
pub mod incremental;
pub mod metrics;
pub mod optimal;
pub mod propositions;
pub mod renyi;
pub mod shannon;

pub use abundance::{AbundanceVector, RelativeAbundance};
pub use dist::Distribution;
pub use error::DistributionError;
pub use incremental::EntropyAccumulator;
pub use optimal::{KappaOptimality, OptimalResilience};
pub use shannon::{effective_configurations, evenness, max_entropy_bits, shannon_entropy_bits};
