//! The paper's Propositions 1–3 as executable, numerically checked
//! statements.
//!
//! Each function evaluates the proposition's premise and conclusion on
//! concrete inputs and returns a structured outcome containing the measured
//! quantities and a boolean verdict. The benches in `fi-bench` sweep these
//! over parameter ranges (experiments E3–E5); the property tests in this
//! crate check them on randomly generated inputs.

use serde::{Deserialize, Serialize};

use crate::abundance::AbundanceVector;
use crate::dist::Distribution;
use crate::error::DistributionError;
use crate::optimal::KappaOptimality;
use crate::shannon::{max_entropy_bits, shannon_entropy_bits};

/// Tolerance for "entropy unchanged" comparisons.
const ENTROPY_TOLERANCE: f64 = 1e-9;

/// Outcome of checking **Proposition 1**: "For κ-optimal fault independence
/// system, increasing configuration abundance decreases entropy, unless the
/// relative configuration abundance remains identical."
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Prop1Outcome {
    /// Entropy (bits) of the κ-optimal starting point.
    pub entropy_before: f64,
    /// Entropy (bits) after the abundance increase.
    pub entropy_after: f64,
    /// Whether the increase preserved relative configuration abundance.
    pub relative_unchanged: bool,
    /// Whether the measured entropies satisfy the proposition.
    pub holds: bool,
}

/// Checks Proposition 1 on a κ-optimal abundance vector and a vector of
/// per-configuration increments.
///
/// # Errors
///
/// * [`DistributionError::DimensionMismatch`] if `increments` has a
///   different dimension than `base`;
/// * [`DistributionError::InvalidProbability`] if `base` is not κ-optimal
///   (the proposition's premise — index 0 is reported).
///
/// # Example
///
/// ```
/// use fi_entropy::{propositions::check_proposition1, AbundanceVector};
/// let base = AbundanceVector::uniform(4, 2)?;
/// // Skewed increase: entropy must strictly decrease.
/// let skew = check_proposition1(&base, &[4, 0, 0, 0]).unwrap();
/// assert!(skew.holds && skew.entropy_after < skew.entropy_before);
/// // Proportional increase: entropy unchanged.
/// let prop = check_proposition1(&base, &[2, 2, 2, 2]).unwrap();
/// assert!(prop.holds && prop.relative_unchanged);
/// # Ok::<(), fi_entropy::DistributionError>(())
/// ```
pub fn check_proposition1(
    base: &AbundanceVector,
    increments: &[u64],
) -> Result<Prop1Outcome, DistributionError> {
    if increments.len() != base.dimension() {
        return Err(DistributionError::DimensionMismatch {
            expected: base.dimension(),
            actual: increments.len(),
        });
    }
    let rel_before = base.relative()?;
    let before_check = KappaOptimality::check(rel_before.distribution(), ENTROPY_TOLERANCE);
    if !before_check.is_optimal() {
        return Err(DistributionError::InvalidProbability {
            index: 0,
            value: before_check.entropy_deficit_bits(),
        });
    }

    let mut after = base.clone();
    for (i, &delta) in increments.iter().enumerate() {
        if delta > 0 {
            after = after.increased(i, delta)?;
        }
    }
    let rel_after = after.relative()?;
    let entropy_before = shannon_entropy_bits(rel_before.distribution());
    let entropy_after = shannon_entropy_bits(rel_after.distribution());
    let relative_unchanged = rel_before
        .distribution()
        .total_variation(rel_after.distribution())?
        < ENTROPY_TOLERANCE;

    let holds = if relative_unchanged {
        (entropy_after - entropy_before).abs() <= ENTROPY_TOLERANCE
    } else {
        entropy_after < entropy_before + ENTROPY_TOLERANCE
    };

    Ok(Prop1Outcome {
        entropy_before,
        entropy_after,
        relative_unchanged,
        holds,
    })
}

/// Outcome of checking **Proposition 2**: "Assuming each replica has a
/// unique configuration, having more replicas does not provide more
/// resilience, unless the relative configuration abundances are identical."
///
/// Resilience here is the paper's entropy measure: Example 1 shows Bitcoin
/// with hundreds of miners staying below the 3 bits of an 8-replica uniform
/// BFT system, because the oligopoly head pins the entropy down.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Prop2Outcome {
    /// Number of replicas before adding.
    pub replicas_before: usize,
    /// Number of replicas after adding.
    pub replicas_after: usize,
    /// Entropy (bits) before adding replicas.
    pub entropy_before: f64,
    /// Entropy (bits) after adding replicas.
    pub entropy_after: f64,
    /// `log2(replicas_after)` — what a fully equalised system would reach.
    pub uniform_bound: f64,
    /// Entropy actually gained by adding the replicas.
    pub entropy_gain: f64,
    /// Upper bound on the achievable gain while the incumbents' *relative*
    /// shares stay fixed: the gain attained by spreading exactly the added
    /// mass uniformly (what Figure 1 sweeps).
    pub head_limited_bound: f64,
    /// Whether the added replicas equalised all shares.
    pub equalized: bool,
    /// Whether the measured quantities satisfy the proposition.
    pub holds: bool,
}

/// Checks Proposition 2: adds `added_weights` as new unique-configuration
/// replicas to a system whose incumbents hold `base_weights`, and verifies
/// that entropy stays strictly below the uniform bound `log2 n` unless all
/// relative shares become identical.
///
/// # Errors
///
/// Propagates [`DistributionError`] from distribution construction (e.g.
/// empty or all-zero inputs).
pub fn check_proposition2(
    base_weights: &[f64],
    added_weights: &[f64],
) -> Result<Prop2Outcome, DistributionError> {
    let before = Distribution::from_weights(base_weights)?;
    let mut all = base_weights.to_vec();
    all.extend_from_slice(added_weights);
    let after = Distribution::from_weights(&all)?;

    let entropy_before = shannon_entropy_bits(&before);
    let entropy_after = shannon_entropy_bits(&after);
    let uniform_bound = max_entropy_bits(after.support_size());
    let equalized = after.is_uniform_on_support(ENTROPY_TOLERANCE);

    // With incumbents' relative shares fixed, the best the newcomers can do
    // is spread their total mass uniformly among themselves; that is the
    // Figure-1 best case.
    let base_total: f64 = base_weights.iter().sum();
    let added_total: f64 = added_weights.iter().sum();
    let head_limited_bound = if added_total > 0.0 && !added_weights.is_empty() {
        let mut best = base_weights.to_vec();
        let share = added_total / added_weights.len() as f64;
        best.extend(std::iter::repeat_n(share, added_weights.len()));
        shannon_entropy_bits(&Distribution::from_weights(&best)?) - entropy_before
    } else {
        0.0
    };
    let _ = base_total;

    let holds = if equalized {
        // The exception branch: equalised shares may reach the bound.
        entropy_after <= uniform_bound + ENTROPY_TOLERANCE
    } else {
        entropy_after < uniform_bound - ENTROPY_TOLERANCE
    };

    Ok(Prop2Outcome {
        replicas_before: before.support_size(),
        replicas_after: after.support_size(),
        entropy_before,
        entropy_after,
        uniform_bound,
        entropy_gain: entropy_after - entropy_before,
        head_limited_bound,
        equalized,
        holds,
    })
}

/// One row of the **Proposition 3** trade-off: "Higher configuration
/// abundance improves the resilience of permissionless blockchains" — at
/// the cost of proportionally more messages (§IV-B's closing trade-off).
///
/// The adversary here is the paper's *malicious operator*: an operator who
/// turns Byzantine for profit controls only the replicas it operates, not
/// other replicas sharing its configuration. With κ configurations at
/// abundance ω (one operator per replica, equal power), one malicious
/// operator controls `1/(κ·ω)` of the power, while one exploited
/// *vulnerability* still controls `1/κ`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Prop3Row {
    /// Configuration abundance ω.
    pub omega: u64,
    /// Total number of replicas `κ·ω`.
    pub replicas: u64,
    /// Voting-power share controlled by a single malicious operator.
    pub operator_share: f64,
    /// Voting-power share compromised by one configuration-level
    /// vulnerability (unchanged by ω).
    pub vulnerability_share: f64,
    /// Messages per PBFT-style three-phase round, `O(n²)`: the overhead the
    /// paper says "is also increasing proportionally".
    pub messages_per_round: u64,
}

/// Sweeps the Proposition 3 trade-off over abundances `1..=max_omega` for a
/// (κ,ω)-optimal system.
///
/// # Errors
///
/// Returns [`DistributionError::Empty`] if `kappa == 0` or
/// `max_omega == 0`.
///
/// # Example
///
/// ```
/// use fi_entropy::propositions::proposition3_tradeoff;
/// let rows = proposition3_tradeoff(5, 4)?;
/// assert_eq!(rows.len(), 4);
/// // Operator share strictly decreases with omega...
/// assert!(rows[3].operator_share < rows[0].operator_share);
/// // ...while the vulnerability share stays put and messages grow.
/// assert_eq!(rows[3].vulnerability_share, rows[0].vulnerability_share);
/// assert!(rows[3].messages_per_round > rows[0].messages_per_round);
/// # Ok::<(), fi_entropy::DistributionError>(())
/// ```
pub fn proposition3_tradeoff(
    kappa: usize,
    max_omega: u64,
) -> Result<Vec<Prop3Row>, DistributionError> {
    if kappa == 0 || max_omega == 0 {
        return Err(DistributionError::Empty);
    }
    let mut rows = Vec::with_capacity(max_omega as usize);
    for omega in 1..=max_omega {
        let replicas = kappa as u64 * omega;
        rows.push(Prop3Row {
            omega,
            replicas,
            operator_share: 1.0 / replicas as f64,
            vulnerability_share: 1.0 / kappa as f64,
            messages_per_round: replicas * replicas,
        });
    }
    Ok(rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prop1_skewed_increase_strictly_decreases_entropy() {
        let base = AbundanceVector::uniform(8, 1).unwrap();
        let out = check_proposition1(&base, &[7, 0, 0, 0, 0, 0, 0, 0]).unwrap();
        assert!(out.holds);
        assert!(!out.relative_unchanged);
        assert!(out.entropy_after < out.entropy_before);
    }

    #[test]
    fn prop1_proportional_increase_preserves_entropy() {
        let base = AbundanceVector::uniform(3, 2).unwrap();
        let out = check_proposition1(&base, &[4, 4, 4]).unwrap();
        assert!(out.holds);
        assert!(out.relative_unchanged);
        assert!((out.entropy_after - out.entropy_before).abs() < 1e-9);
    }

    #[test]
    fn prop1_rejects_non_optimal_premise() {
        let base = AbundanceVector::new(vec![3, 1]).unwrap();
        assert!(check_proposition1(&base, &[1, 1]).is_err());
    }

    #[test]
    fn prop1_rejects_dimension_mismatch() {
        let base = AbundanceVector::uniform(3, 1).unwrap();
        assert!(check_proposition1(&base, &[1, 1]).is_err());
    }

    #[test]
    fn prop1_zero_increment_is_identity() {
        let base = AbundanceVector::uniform(4, 2).unwrap();
        let out = check_proposition1(&base, &[0, 0, 0, 0]).unwrap();
        assert!(out.holds && out.relative_unchanged);
        assert_eq!(out.entropy_before, out.entropy_after);
    }

    #[test]
    fn prop2_oligopoly_addition_stays_below_bound() {
        // A Bitcoin-like head plus 100 dust miners.
        let base = [34.0, 20.0, 13.0, 11.0, 9.0];
        let dust = vec![0.01; 100];
        let out = check_proposition2(&base, &dust).unwrap();
        assert!(out.holds);
        assert!(!out.equalized);
        assert!(out.entropy_after < out.uniform_bound);
        assert_eq!(out.replicas_after, 105);
        // The dust gains some entropy, but only up to the head-limited
        // bound, far below log2(105) ≈ 6.7.
        assert!(out.entropy_gain <= out.head_limited_bound + 1e-9);
        assert!(out.uniform_bound > 6.5);
        assert!(out.entropy_after < 3.5);
    }

    #[test]
    fn prop2_equalized_addition_reaches_bound() {
        let base = [1.0, 1.0];
        let added = [1.0, 1.0];
        let out = check_proposition2(&base, &added).unwrap();
        assert!(out.holds);
        assert!(out.equalized);
        assert!((out.entropy_after - out.uniform_bound).abs() < 1e-9);
    }

    #[test]
    fn prop2_no_addition_is_consistent() {
        let base = [3.0, 1.0];
        let out = check_proposition2(&base, &[]).unwrap();
        assert!(out.holds);
        assert_eq!(out.entropy_gain, 0.0);
        assert_eq!(out.head_limited_bound, 0.0);
    }

    #[test]
    fn prop2_entropy_gain_monotone_in_added_mass_spread() {
        // Same added mass over more newcomers gains (weakly) more entropy.
        let base = [50.0, 30.0, 20.0];
        let few = check_proposition2(&base, &[1.0; 2]).unwrap();
        let many = check_proposition2(&base, &[0.2; 10]).unwrap();
        assert!(many.entropy_gain >= few.entropy_gain - 1e-9);
    }

    #[test]
    fn prop3_operator_share_decreases_vulnerability_share_constant() {
        let rows = proposition3_tradeoff(4, 6).unwrap();
        for w in rows.windows(2) {
            assert!(w[1].operator_share < w[0].operator_share);
            assert_eq!(w[1].vulnerability_share, w[0].vulnerability_share);
            assert!(w[1].messages_per_round > w[0].messages_per_round);
        }
    }

    #[test]
    fn prop3_message_overhead_is_quadratic() {
        let rows = proposition3_tradeoff(3, 2).unwrap();
        assert_eq!(rows[0].messages_per_round, 9);
        assert_eq!(rows[1].messages_per_round, 36);
    }

    #[test]
    fn prop3_rejects_degenerate_inputs() {
        assert!(proposition3_tradeoff(0, 3).is_err());
        assert!(proposition3_tradeoff(3, 0).is_err());
    }
}
