//! Rényi entropies and Hill numbers.
//!
//! The paper measures diversity with Shannon entropy; the Rényi family
//! generalises it and exposes two operationally meaningful extremes for
//! fault independence:
//!
//! * **Min-entropy** (`α → ∞`) is determined by the *largest* configuration
//!   share — exactly the worst-case single vulnerability: an attacker who
//!   can exploit one configuration gains at most `2^{−H_∞}` of the voting
//!   power.
//! * **Hartley entropy** (`α = 0`) counts the support — the number of
//!   distinct configurations regardless of share.
//!
//! Hill numbers `N_α = exp_b(H_α)` convert any of these into an "effective
//! number of configurations", the unit in which κ-optimality is easiest to
//! read.

use crate::dist::Distribution;
use crate::error::DistributionError;

/// Rényi entropy `H_α(p)` in bits.
///
/// * `α = 0`: Hartley entropy, `log2 |support|`;
/// * `α = 1`: Shannon entropy (limit case);
/// * `α = 2`: collision entropy, `−log2 Σ p_i²`;
/// * `α = ∞` (`f64::INFINITY`): min-entropy, `−log2 max p_i`.
///
/// # Errors
///
/// Returns [`DistributionError::InvalidProbability`] if `alpha` is negative
/// or NaN.
///
/// # Example
///
/// ```
/// use fi_entropy::{renyi::renyi_entropy_bits, Distribution};
/// let p = Distribution::uniform(4)?;
/// for alpha in [0.0, 0.5, 1.0, 2.0, f64::INFINITY] {
///     // All orders agree on uniform distributions.
///     assert!((renyi_entropy_bits(&p, alpha)? - 2.0).abs() < 1e-12);
/// }
/// # Ok::<(), fi_entropy::DistributionError>(())
/// ```
pub fn renyi_entropy_bits(p: &Distribution, alpha: f64) -> Result<f64, DistributionError> {
    if alpha.is_nan() || alpha < 0.0 {
        return Err(DistributionError::InvalidProbability {
            index: 0,
            value: alpha,
        });
    }
    if alpha == 0.0 {
        return Ok((p.support_size() as f64).log2());
    }
    if alpha.is_infinite() {
        return Ok(min_entropy_bits(p));
    }
    if (alpha - 1.0).abs() < 1e-12 {
        return Ok(crate::shannon::shannon_entropy_bits(p));
    }
    let sum: f64 = p
        .probabilities()
        .iter()
        .filter(|&&pi| pi > 0.0)
        .map(|&pi| pi.powf(alpha))
        .sum();
    Ok(sum.log2() / (1.0 - alpha))
}

/// Min-entropy `H_∞(p) = −log2 max_i p_i` in bits.
///
/// `2^{−H_∞}` is the voting-power share captured by compromising the single
/// most popular configuration — the paper's worst-case `f^i_t` for one
/// vulnerability.
#[must_use]
pub fn min_entropy_bits(p: &Distribution) -> f64 {
    let max = p.max_probability();
    if max <= 0.0 {
        0.0
    } else {
        -max.log2()
    }
}

/// Collision entropy `H_2(p) = −log2 Σ p_i²` in bits. `Σ p_i²` is the
/// Simpson/Herfindahl–Hirschman concentration index: the probability that
/// two independently sampled units of voting power share a configuration
/// (and hence share every configuration-level vulnerability).
#[must_use]
pub fn collision_entropy_bits(p: &Distribution) -> f64 {
    renyi_entropy_bits(p, 2.0).expect("alpha = 2 is valid")
}

/// The Herfindahl–Hirschman concentration index `Σ p_i²` itself, in
/// `[1/k, 1]`. Regulators use > 0.25 as "highly concentrated"; Example 1's
/// Bitcoin distribution lands near 0.2.
#[must_use]
pub fn concentration_index(p: &Distribution) -> f64 {
    p.probabilities().iter().map(|&pi| pi * pi).sum()
}

/// Hill number `N_α = 2^{H_α}`: the equivalent number of equally-common
/// configurations at order `α`.
///
/// # Errors
///
/// Same as [`renyi_entropy_bits`].
pub fn hill_number(p: &Distribution, alpha: f64) -> Result<f64, DistributionError> {
    Ok(renyi_entropy_bits(p, alpha)?.exp2())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64) -> bool {
        (a - b).abs() < 1e-9
    }

    #[test]
    fn renyi_rejects_bad_alpha() {
        let p = Distribution::uniform(2).unwrap();
        assert!(renyi_entropy_bits(&p, -1.0).is_err());
        assert!(renyi_entropy_bits(&p, f64::NAN).is_err());
    }

    #[test]
    fn renyi_is_monotone_nonincreasing_in_alpha() {
        let p = Distribution::from_weights(&[5.0, 3.0, 1.0, 1.0]).unwrap();
        let alphas = [0.0, 0.5, 1.0, 2.0, 5.0, f64::INFINITY];
        let hs: Vec<f64> = alphas
            .iter()
            .map(|&a| renyi_entropy_bits(&p, a).unwrap())
            .collect();
        for w in hs.windows(2) {
            assert!(w[0] >= w[1] - 1e-12, "Renyi must be non-increasing: {hs:?}");
        }
    }

    #[test]
    fn hartley_counts_support() {
        let p = Distribution::from_weights(&[1.0, 0.0, 2.0, 3.0]).unwrap();
        assert!(close(renyi_entropy_bits(&p, 0.0).unwrap(), 3f64.log2()));
    }

    #[test]
    fn alpha_one_matches_shannon() {
        let p = Distribution::from_weights(&[3.0, 2.0, 1.0]).unwrap();
        assert!(close(
            renyi_entropy_bits(&p, 1.0).unwrap(),
            crate::shannon::shannon_entropy_bits(&p)
        ));
        // And the limit from both sides approaches it.
        let near = renyi_entropy_bits(&p, 1.0001).unwrap();
        assert!((near - crate::shannon::shannon_entropy_bits(&p)).abs() < 1e-3);
    }

    #[test]
    fn min_entropy_tracks_dominant_share() {
        let p = Distribution::from_weights(&[1.0, 1.0, 2.0]).unwrap();
        assert!(close(min_entropy_bits(&p), 1.0)); // max share = 1/2
        let d = Distribution::degenerate(4, 0).unwrap();
        assert!(close(min_entropy_bits(&d), 0.0));
    }

    #[test]
    fn collision_entropy_and_concentration_agree() {
        let p = Distribution::from_weights(&[3.0, 1.0]).unwrap();
        assert!(close(
            collision_entropy_bits(&p),
            -concentration_index(&p).log2()
        ));
    }

    #[test]
    fn concentration_bounds() {
        let u = Distribution::uniform(10).unwrap();
        assert!(close(concentration_index(&u), 0.1));
        let d = Distribution::degenerate(10, 3).unwrap();
        assert!(close(concentration_index(&d), 1.0));
    }

    #[test]
    fn hill_numbers_interpolate_counts() {
        let p = Distribution::from_weights(&[8.0, 1.0, 1.0]).unwrap();
        let n0 = hill_number(&p, 0.0).unwrap();
        let n1 = hill_number(&p, 1.0).unwrap();
        let ninf = hill_number(&p, f64::INFINITY).unwrap();
        assert!(close(n0, 3.0));
        assert!(n1 < n0 && n1 > ninf);
        assert!(close(ninf, 10.0 / 8.0));
    }
}
