//! Shannon entropy of configuration distributions (paper §IV-A).
//!
//! `H(p) = −Σ_{i∈[k]} p_i log p_i = Σ p_i log (1/p_i)`, with the paper's
//! convention `log(1/0) := 0` (zero-probability configurations contribute
//! nothing). All public functions default to base-2 logarithms (bits), which
//! is what makes the paper's "8 uniform replicas ⇒ entropy 3" comparison
//! line up; natural-log variants are provided for interoperability.

use crate::dist::Distribution;

/// The logarithm base used for an entropy computation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum LogBase {
    /// Base 2 — entropy in bits (shannons). The paper's Figure 1 unit.
    #[default]
    Two,
    /// Base e — entropy in nats.
    E,
    /// Base 10 — entropy in hartleys.
    Ten,
}

impl LogBase {
    fn log(self, x: f64) -> f64 {
        match self {
            LogBase::Two => x.log2(),
            LogBase::E => x.ln(),
            LogBase::Ten => x.log10(),
        }
    }
}

/// Pins a computed entropy's degenerate cases to exactly `+0.0`.
///
/// Entropy is mathematically non-negative, but floating-point evaluation can
/// produce `-0.0` (a degenerate distribution's `−1·log 1` term) or stray a
/// few ulps below zero (the incremental `log2 W − S/W` identity near a point
/// mass). Every entropy-returning path in this crate funnels its result
/// through this one helper so no caller ever observes a negative sign bit.
///
/// `NaN` inputs propagate unchanged (they indicate a caller bug, not a
/// degenerate distribution).
#[must_use]
pub fn normalized_entropy(h: f64) -> f64 {
    if h <= 0.0 {
        0.0
    } else {
        h
    }
}

/// Shannon entropy of `p` in the given base, using `log(1/0) := 0`.
#[must_use]
pub fn shannon_entropy(p: &Distribution, base: LogBase) -> f64 {
    let h: f64 = p
        .probabilities()
        .iter()
        .filter(|&&pi| pi > 0.0)
        .map(|&pi| -pi * base.log(pi))
        .sum();
    normalized_entropy(h)
}

/// Shannon entropy in bits.
///
/// # Example
///
/// ```
/// use fi_entropy::{shannon_entropy_bits, Distribution};
/// let bft8 = Distribution::uniform(8)?;
/// assert!((shannon_entropy_bits(&bft8) - 3.0).abs() < 1e-12);
/// # Ok::<(), fi_entropy::DistributionError>(())
/// ```
#[must_use]
pub fn shannon_entropy_bits(p: &Distribution) -> f64 {
    shannon_entropy(p, LogBase::Two)
}

/// Shannon entropy in nats.
#[must_use]
pub fn shannon_entropy_nats(p: &Distribution) -> f64 {
    shannon_entropy(p, LogBase::E)
}

/// The maximum achievable entropy (bits) for a space of `k` configurations:
/// `log2 k`, attained exactly by the uniform distribution.
///
/// Returns `0.0` for `k = 0` (an empty space carries no uncertainty).
#[must_use]
pub fn max_entropy_bits(k: usize) -> f64 {
    if k == 0 {
        0.0
    } else {
        (k as f64).log2()
    }
}

/// Pielou evenness: `H(p) / log |support(p)| ∈ [0, 1]`, the fraction of the
/// achievable entropy realised on the used configurations. `1.0` iff the
/// distribution is uniform on its support (Definition 1's equality
/// condition); defined as `1.0` for a single-configuration system.
#[must_use]
pub fn evenness(p: &Distribution) -> f64 {
    let support = p.support_size();
    if support <= 1 {
        return 1.0;
    }
    shannon_entropy_bits(p) / max_entropy_bits(support)
}

/// The *effective number of configurations* `2^H(p)` (the Hill number of
/// order 1, perplexity). This is the size of the uniform system with the
/// same diversity: Bitcoin's Example-1 distribution has an effective
/// configuration count below 8 even with hundreds of miners.
///
/// # Example
///
/// ```
/// use fi_entropy::{effective_configurations, Distribution};
/// let u = Distribution::uniform(16)?;
/// assert!((effective_configurations(&u) - 16.0).abs() < 1e-9);
/// # Ok::<(), fi_entropy::DistributionError>(())
/// ```
#[must_use]
pub fn effective_configurations(p: &Distribution) -> f64 {
    shannon_entropy_bits(p).exp2()
}

/// Kullback–Leibler divergence `D(p‖q)` in bits; `+∞` when `p` puts mass
/// where `q` does not.
///
/// # Errors
///
/// Returns [`crate::DistributionError::DimensionMismatch`] when dimensions
/// differ.
pub fn kl_divergence_bits(
    p: &Distribution,
    q: &Distribution,
) -> Result<f64, crate::DistributionError> {
    if p.dimension() != q.dimension() {
        return Err(crate::DistributionError::DimensionMismatch {
            expected: p.dimension(),
            actual: q.dimension(),
        });
    }
    let mut d = 0.0;
    for (&pi, &qi) in p.probabilities().iter().zip(q.probabilities()) {
        if pi > 0.0 {
            if qi == 0.0 {
                return Ok(f64::INFINITY);
            }
            d += pi * (pi / qi).log2();
        }
    }
    Ok(d.max(0.0))
}

/// The entropy gap to uniformity: `log2 k − H(p) = D(p ‖ uniform_k) ≥ 0`.
/// Zero iff `p` is uniform over the full space; this is the quantity a
/// diversity manager should drive to zero.
#[must_use]
pub fn uniformity_gap_bits(p: &Distribution) -> f64 {
    (max_entropy_bits(p.dimension()) - shannon_entropy_bits(p)).max(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dist::Distribution;

    fn close(a: f64, b: f64) -> bool {
        (a - b).abs() < 1e-12
    }

    #[test]
    fn uniform_entropy_is_log_k() {
        for k in 1..=64 {
            let p = Distribution::uniform(k).unwrap();
            assert!(
                close(shannon_entropy_bits(&p), (k as f64).log2()),
                "k = {k}"
            );
        }
    }

    #[test]
    fn paper_comparison_eight_replicas_is_three_bits() {
        // §IV-B: "when considering BFT protocols with 8 replicas, the
        // entropy is already higher (entropy is 3)".
        let p = Distribution::uniform(8).unwrap();
        assert!(close(shannon_entropy_bits(&p), 3.0));
    }

    #[test]
    fn degenerate_entropy_is_zero_and_positive_zero() {
        let p = Distribution::degenerate(4, 1).unwrap();
        let h = shannon_entropy_bits(&p);
        assert_eq!(h, 0.0);
        assert!(h.is_sign_positive());
    }

    #[test]
    fn normalized_entropy_pins_degenerate_signs() {
        // Regression for the −0.0 quirk: the fix lives in one place now, so
        // both the batch path and the incremental accumulator inherit it.
        assert!(normalized_entropy(-0.0).is_sign_positive());
        assert_eq!(normalized_entropy(-0.0), 0.0);
        // A few ulps of negative rounding noise are pinned to zero too.
        assert_eq!(normalized_entropy(-1e-16), 0.0);
        assert_eq!(normalized_entropy(1.5), 1.5);
        assert!(normalized_entropy(f64::NAN).is_nan());
    }

    #[test]
    fn zeros_are_inert() {
        let p = Distribution::from_weights(&[1.0, 1.0]).unwrap();
        let q = Distribution::from_weights(&[1.0, 1.0, 0.0, 0.0]).unwrap();
        assert!(close(shannon_entropy_bits(&p), shannon_entropy_bits(&q)));
    }

    #[test]
    fn entropy_bounded_by_log_support() {
        let p = Distribution::from_weights(&[5.0, 3.0, 2.0, 0.0]).unwrap();
        let h = shannon_entropy_bits(&p);
        assert!(h > 0.0);
        assert!(h <= max_entropy_bits(p.support_size()) + 1e-12);
    }

    #[test]
    fn bases_are_consistent() {
        let p = Distribution::from_weights(&[3.0, 1.0]).unwrap();
        let bits = shannon_entropy(&p, LogBase::Two);
        let nats = shannon_entropy(&p, LogBase::E);
        let harts = shannon_entropy(&p, LogBase::Ten);
        assert!(close(nats, bits * std::f64::consts::LN_2));
        assert!(close(harts, bits * 2f64.log10()));
        assert!(close(shannon_entropy_nats(&p), nats));
    }

    #[test]
    fn max_entropy_edge_cases() {
        assert_eq!(max_entropy_bits(0), 0.0);
        assert_eq!(max_entropy_bits(1), 0.0);
        assert!(close(max_entropy_bits(8), 3.0));
    }

    #[test]
    fn evenness_is_one_for_uniform_and_singletons() {
        assert!(close(evenness(&Distribution::uniform(5).unwrap()), 1.0));
        assert!(close(
            evenness(&Distribution::degenerate(3, 0).unwrap()),
            1.0
        ));
        let skewed = Distribution::from_weights(&[9.0, 1.0]).unwrap();
        assert!(evenness(&skewed) < 1.0);
        assert!(evenness(&skewed) > 0.0);
    }

    #[test]
    fn effective_configurations_matches_uniform_equivalent() {
        let p = Distribution::from_weights(&[1.0, 1.0, 1.0, 1.0]).unwrap();
        assert!(close(effective_configurations(&p), 4.0));
        let degenerate = Distribution::degenerate(9, 0).unwrap();
        assert!(close(effective_configurations(&degenerate), 1.0));
    }

    #[test]
    fn kl_divergence_properties() {
        let p = Distribution::from_weights(&[3.0, 1.0]).unwrap();
        let u = Distribution::uniform(2).unwrap();
        assert!(close(kl_divergence_bits(&p, &p).unwrap(), 0.0));
        assert!(kl_divergence_bits(&p, &u).unwrap() > 0.0);
        // Mass where q has none => infinite divergence.
        let q = Distribution::degenerate(2, 0).unwrap();
        assert!(kl_divergence_bits(&p, &q).unwrap().is_infinite());
        let r = Distribution::uniform(3).unwrap();
        assert!(kl_divergence_bits(&p, &r).is_err());
    }

    #[test]
    fn uniformity_gap_is_kl_to_uniform() {
        let p = Distribution::from_weights(&[3.0, 1.0]).unwrap();
        let u = Distribution::uniform(2).unwrap();
        assert!(close(
            uniformity_gap_bits(&p),
            kl_divergence_bits(&p, &u).unwrap()
        ));
        assert!(close(uniformity_gap_bits(&u), 0.0));
    }

    #[test]
    fn grouping_never_increases_entropy() {
        // Data-processing inequality, which underlies the delegation
        // argument (§III): pooling always loses diversity.
        let p = Distribution::from_weights(&[4.0, 3.0, 2.0, 1.0]).unwrap();
        let g = p.grouped(&[vec![0, 3], vec![1, 2]]).unwrap();
        assert!(shannon_entropy_bits(&g) <= shannon_entropy_bits(&p) + 1e-12);
    }
}
