//! Validated probability distributions over the configuration space `D`.
//!
//! The paper (§IV-A): "Let `p = (p_1, …, p_k)` be a probability distribution
//! of `D` on `k` replica configurations … `p_i` represents the ratio of
//! replicas having configuration `d_i`." For Bitcoin-like systems `p_i` is a
//! share of voting power (relative configuration abundance); for classic BFT
//! it is a share of replica count.

use fi_types::VotingPower;
use serde::{Deserialize, Serialize};

use crate::error::DistributionError;

/// How far from exactly 1.0 a probability vector may sum and still be
/// accepted by [`Distribution::from_probabilities`]. Inputs within the
/// tolerance are renormalized exactly.
pub const NORMALIZATION_TOLERANCE: f64 = 1e-9;

/// A probability distribution `p = (p_1, …, p_k)` over `k` configurations.
///
/// Invariants (enforced at construction):
/// * at least one entry,
/// * every entry finite and `≥ 0`,
/// * entries sum to 1 (renormalized exactly after validation).
///
/// Zero entries are allowed and meaningful: the paper defines
/// `log(1/0) := 0`, i.e. unused configurations contribute nothing to
/// entropy but still count toward the dimension `k` of the configuration
/// space.
///
/// # Example
///
/// ```
/// use fi_entropy::Distribution;
/// let p = Distribution::from_weights(&[3.0, 1.0, 0.0])?;
/// assert_eq!(p.dimension(), 3);
/// assert_eq!(p.support_size(), 2);
/// assert!((p.probabilities()[0] - 0.75).abs() < 1e-12);
/// # Ok::<(), fi_entropy::DistributionError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Distribution {
    probs: Vec<f64>,
}

impl Distribution {
    /// Builds a distribution from explicit probabilities.
    ///
    /// # Errors
    ///
    /// * [`DistributionError::Empty`] if `probs` is empty;
    /// * [`DistributionError::InvalidProbability`] if any entry is negative,
    ///   NaN, or infinite;
    /// * [`DistributionError::NotNormalized`] if the sum deviates from 1 by
    ///   more than [`NORMALIZATION_TOLERANCE`].
    pub fn from_probabilities(probs: Vec<f64>) -> Result<Self, DistributionError> {
        Self::validate_entries(&probs)?;
        let sum: f64 = probs.iter().sum();
        if (sum - 1.0).abs() > NORMALIZATION_TOLERANCE {
            return Err(DistributionError::NotNormalized { sum });
        }
        Ok(Self::renormalized(probs, sum))
    }

    /// Builds a distribution by normalizing non-negative weights.
    ///
    /// # Errors
    ///
    /// * [`DistributionError::Empty`] if `weights` is empty;
    /// * [`DistributionError::InvalidProbability`] for negative/non-finite
    ///   entries;
    /// * [`DistributionError::ZeroTotalWeight`] if every weight is zero.
    pub fn from_weights(weights: &[f64]) -> Result<Self, DistributionError> {
        Self::validate_entries(weights)?;
        let sum: f64 = weights.iter().sum();
        if sum <= 0.0 {
            return Err(DistributionError::ZeroTotalWeight);
        }
        Ok(Self::renormalized(weights.to_vec(), sum))
    }

    /// Builds a distribution from integer counts (configuration abundance).
    ///
    /// # Errors
    ///
    /// * [`DistributionError::Empty`] / [`DistributionError::ZeroTotalWeight`]
    ///   as for [`from_weights`](Self::from_weights).
    pub fn from_counts(counts: &[u64]) -> Result<Self, DistributionError> {
        if counts.is_empty() {
            return Err(DistributionError::Empty);
        }
        let total: u64 = counts.iter().sum();
        if total == 0 {
            return Err(DistributionError::ZeroTotalWeight);
        }
        Ok(Distribution {
            probs: counts.iter().map(|&c| c as f64 / total as f64).collect(),
        })
    }

    /// Builds a distribution of voting-power shares — the paper's *relative
    /// configuration abundance* for permissionless systems.
    ///
    /// # Errors
    ///
    /// Same as [`from_counts`](Self::from_counts).
    ///
    /// # Example
    ///
    /// ```
    /// use fi_entropy::Distribution;
    /// use fi_types::VotingPower;
    /// let p = Distribution::from_powers(&[
    ///     VotingPower::new(600_000),
    ///     VotingPower::new(400_000),
    /// ])?;
    /// assert!((p.probabilities()[0] - 0.6).abs() < 1e-12);
    /// # Ok::<(), fi_entropy::DistributionError>(())
    /// ```
    pub fn from_powers(powers: &[VotingPower]) -> Result<Self, DistributionError> {
        let counts: Vec<u64> = powers.iter().map(|p| p.as_units()).collect();
        Self::from_counts(&counts)
    }

    /// The uniform distribution over `k` configurations — the entropy
    /// maximizer for fixed `k` (paper §IV-A, first maximization condition).
    ///
    /// # Errors
    ///
    /// Returns [`DistributionError::Empty`] if `k == 0`.
    pub fn uniform(k: usize) -> Result<Self, DistributionError> {
        if k == 0 {
            return Err(DistributionError::Empty);
        }
        Ok(Distribution {
            probs: vec![1.0 / k as f64; k],
        })
    }

    /// A point mass on configuration `index` of a `k`-dimensional space —
    /// the zero-entropy monoculture.
    ///
    /// # Errors
    ///
    /// * [`DistributionError::Empty`] if `k == 0`;
    /// * [`DistributionError::DimensionMismatch`] if `index >= k`.
    pub fn degenerate(k: usize, index: usize) -> Result<Self, DistributionError> {
        if k == 0 {
            return Err(DistributionError::Empty);
        }
        if index >= k {
            return Err(DistributionError::DimensionMismatch {
                expected: k,
                actual: index,
            });
        }
        let mut probs = vec![0.0; k];
        probs[index] = 1.0;
        Ok(Distribution { probs })
    }

    fn validate_entries(entries: &[f64]) -> Result<(), DistributionError> {
        if entries.is_empty() {
            return Err(DistributionError::Empty);
        }
        for (index, &value) in entries.iter().enumerate() {
            if !value.is_finite() || value < 0.0 {
                return Err(DistributionError::InvalidProbability { index, value });
            }
        }
        Ok(())
    }

    fn renormalized(mut probs: Vec<f64>, sum: f64) -> Self {
        for p in &mut probs {
            *p /= sum;
        }
        Distribution { probs }
    }

    /// The probabilities, in configuration order.
    #[must_use]
    pub fn probabilities(&self) -> &[f64] {
        &self.probs
    }

    /// The dimension `k` of the configuration space (including zero
    /// entries).
    #[must_use]
    pub fn dimension(&self) -> usize {
        self.probs.len()
    }

    /// The number of configurations actually in use (`|p′|` in
    /// Definition 1): entries with non-zero probability.
    #[must_use]
    pub fn support_size(&self) -> usize {
        self.probs.iter().filter(|&&p| p > 0.0).count()
    }

    /// Iterates over `(index, probability)` pairs of the support.
    pub fn support(&self) -> impl Iterator<Item = (usize, f64)> + '_ {
        self.probs
            .iter()
            .copied()
            .enumerate()
            .filter(|&(_, p)| p > 0.0)
    }

    /// The largest probability — the voting-power share of the dominant
    /// configuration (the oligopoly head in Example 1).
    #[must_use]
    pub fn max_probability(&self) -> f64 {
        self.probs.iter().copied().fold(0.0, f64::max)
    }

    /// Drops zero entries, yielding the distribution restricted to its
    /// support. Entropy is unchanged (the paper's `log(1/0) := 0`
    /// convention makes zeros inert).
    #[must_use]
    pub fn restricted_to_support(&self) -> Distribution {
        Distribution {
            probs: self.probs.iter().copied().filter(|&p| p > 0.0).collect(),
        }
    }

    /// Appends `extra` zero-probability configurations (growing `k` without
    /// changing the distribution's mass). Useful for comparing spaces of
    /// different abundance.
    #[must_use]
    pub fn padded(&self, extra: usize) -> Distribution {
        let mut probs = self.probs.clone();
        probs.extend(std::iter::repeat_n(0.0, extra));
        Distribution { probs }
    }

    /// Groups outcomes: each entry of `groups` is a set of indices whose
    /// probabilities are summed into one outcome of the result. Models
    /// *delegation* (§III): many replicas collapsing onto one effective
    /// configuration (an exchange, a mining pool).
    ///
    /// # Errors
    ///
    /// Returns [`DistributionError::DimensionMismatch`] if any index is out
    /// of range, and [`DistributionError::Empty`] if `groups` is empty.
    /// Indices may not repeat across groups and every index must be covered;
    /// otherwise the result would not be a distribution.
    pub fn grouped(&self, groups: &[Vec<usize>]) -> Result<Distribution, DistributionError> {
        if groups.is_empty() {
            return Err(DistributionError::Empty);
        }
        let mut seen = vec![false; self.probs.len()];
        let mut probs = Vec::with_capacity(groups.len());
        for group in groups {
            let mut sum = 0.0;
            for &i in group {
                if i >= self.probs.len() {
                    return Err(DistributionError::DimensionMismatch {
                        expected: self.probs.len(),
                        actual: i,
                    });
                }
                if seen[i] {
                    return Err(DistributionError::InvalidProbability {
                        index: i,
                        value: self.probs[i],
                    });
                }
                seen[i] = true;
                sum += self.probs[i];
            }
            probs.push(sum);
        }
        if !seen.iter().all(|&s| s) {
            return Err(DistributionError::NotNormalized {
                sum: probs.iter().sum(),
            });
        }
        Ok(Distribution { probs })
    }

    /// Mixes two distributions over the same space:
    /// `λ·self + (1−λ)·other`.
    ///
    /// # Errors
    ///
    /// * [`DistributionError::DimensionMismatch`] if dimensions differ;
    /// * [`DistributionError::InvalidProbability`] if `lambda ∉ [0, 1]`.
    pub fn mixed(
        &self,
        other: &Distribution,
        lambda: f64,
    ) -> Result<Distribution, DistributionError> {
        if self.dimension() != other.dimension() {
            return Err(DistributionError::DimensionMismatch {
                expected: self.dimension(),
                actual: other.dimension(),
            });
        }
        if !(0.0..=1.0).contains(&lambda) || !lambda.is_finite() {
            return Err(DistributionError::InvalidProbability {
                index: 0,
                value: lambda,
            });
        }
        let probs = self
            .probs
            .iter()
            .zip(&other.probs)
            .map(|(&a, &b)| lambda * a + (1.0 - lambda) * b)
            .collect();
        Ok(Distribution { probs })
    }

    /// Total variation distance `½ Σ |p_i − q_i|` to another distribution
    /// over the same space.
    ///
    /// # Errors
    ///
    /// Returns [`DistributionError::DimensionMismatch`] if dimensions
    /// differ.
    pub fn total_variation(&self, other: &Distribution) -> Result<f64, DistributionError> {
        if self.dimension() != other.dimension() {
            return Err(DistributionError::DimensionMismatch {
                expected: self.dimension(),
                actual: other.dimension(),
            });
        }
        Ok(self
            .probs
            .iter()
            .zip(&other.probs)
            .map(|(&a, &b)| (a - b).abs())
            .sum::<f64>()
            / 2.0)
    }

    /// Whether the distribution is uniform over its support within `tol`
    /// (Definition 1's second condition).
    #[must_use]
    pub fn is_uniform_on_support(&self, tol: f64) -> bool {
        let support: Vec<f64> = self.probs.iter().copied().filter(|&p| p > 0.0).collect();
        if support.is_empty() {
            return false;
        }
        let expect = 1.0 / support.len() as f64;
        support.iter().all(|&p| (p - expect).abs() <= tol)
    }

    /// Shannon entropy in bits (convenience; see [`crate::shannon`]).
    #[must_use]
    pub fn shannon_entropy(&self) -> f64 {
        crate::shannon::shannon_entropy_bits(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64) -> bool {
        (a - b).abs() < 1e-12
    }

    #[test]
    fn from_probabilities_accepts_valid() {
        let p = Distribution::from_probabilities(vec![0.5, 0.25, 0.25]).unwrap();
        assert_eq!(p.dimension(), 3);
    }

    #[test]
    fn from_probabilities_rejects_empty() {
        assert_eq!(
            Distribution::from_probabilities(vec![]),
            Err(DistributionError::Empty)
        );
    }

    #[test]
    fn from_probabilities_rejects_negative() {
        let err = Distribution::from_probabilities(vec![1.2, -0.2]).unwrap_err();
        assert!(matches!(
            err,
            DistributionError::InvalidProbability { index: 1, .. }
        ));
    }

    #[test]
    fn from_probabilities_rejects_nan() {
        assert!(Distribution::from_probabilities(vec![f64::NAN, 1.0]).is_err());
    }

    #[test]
    fn from_probabilities_rejects_unnormalized() {
        assert!(matches!(
            Distribution::from_probabilities(vec![0.5, 0.4]),
            Err(DistributionError::NotNormalized { .. })
        ));
    }

    #[test]
    fn from_probabilities_renormalizes_tiny_drift() {
        let drift = vec![0.5 + 1e-12, 0.5];
        let p = Distribution::from_probabilities(drift).unwrap();
        assert!(close(p.probabilities().iter().sum::<f64>(), 1.0));
    }

    #[test]
    fn from_weights_normalizes() {
        let p = Distribution::from_weights(&[2.0, 6.0]).unwrap();
        assert!(close(p.probabilities()[0], 0.25));
        assert!(close(p.probabilities()[1], 0.75));
    }

    #[test]
    fn from_weights_rejects_all_zero() {
        assert_eq!(
            Distribution::from_weights(&[0.0, 0.0]),
            Err(DistributionError::ZeroTotalWeight)
        );
    }

    #[test]
    fn from_counts_and_powers_agree() {
        let c = Distribution::from_counts(&[3, 1]).unwrap();
        let p = Distribution::from_powers(&[VotingPower::new(3), VotingPower::new(1)]).unwrap();
        assert_eq!(c, p);
    }

    #[test]
    fn uniform_properties() {
        let u = Distribution::uniform(4).unwrap();
        assert_eq!(u.dimension(), 4);
        assert_eq!(u.support_size(), 4);
        assert!(u.is_uniform_on_support(1e-15));
        assert!(Distribution::uniform(0).is_err());
    }

    #[test]
    fn degenerate_has_singleton_support() {
        let d = Distribution::degenerate(5, 2).unwrap();
        assert_eq!(d.support_size(), 1);
        assert!(close(d.probabilities()[2], 1.0));
        assert!(Distribution::degenerate(3, 3).is_err());
        assert!(Distribution::degenerate(0, 0).is_err());
    }

    #[test]
    fn support_iterator_skips_zeros() {
        let p = Distribution::from_weights(&[1.0, 0.0, 3.0]).unwrap();
        let support: Vec<usize> = p.support().map(|(i, _)| i).collect();
        assert_eq!(support, vec![0, 2]);
        assert_eq!(p.support_size(), 2);
    }

    #[test]
    fn max_probability_finds_head() {
        let p = Distribution::from_weights(&[1.0, 5.0, 2.0]).unwrap();
        assert!(close(p.max_probability(), 5.0 / 8.0));
    }

    #[test]
    fn restricted_to_support_preserves_entropy() {
        let p = Distribution::from_weights(&[1.0, 0.0, 1.0, 0.0]).unwrap();
        let r = p.restricted_to_support();
        assert_eq!(r.dimension(), 2);
        assert!(close(p.shannon_entropy(), r.shannon_entropy()));
    }

    #[test]
    fn padded_preserves_entropy_and_grows_dimension() {
        let p = Distribution::uniform(2).unwrap();
        let padded = p.padded(3);
        assert_eq!(padded.dimension(), 5);
        assert_eq!(padded.support_size(), 2);
        assert!(close(padded.shannon_entropy(), 1.0));
    }

    #[test]
    fn grouped_models_delegation() {
        // Four miners, two pools: grouping halves the support.
        let p = Distribution::uniform(4).unwrap();
        let pools = p.grouped(&[vec![0, 1], vec![2, 3]]).unwrap();
        assert_eq!(pools.dimension(), 2);
        assert!(close(pools.shannon_entropy(), 1.0));
        // Entropy never increases under grouping.
        assert!(pools.shannon_entropy() <= p.shannon_entropy());
    }

    #[test]
    fn grouped_rejects_partial_cover() {
        let p = Distribution::uniform(3).unwrap();
        assert!(p.grouped(&[vec![0, 1]]).is_err());
    }

    #[test]
    fn grouped_rejects_duplicates_and_out_of_range() {
        let p = Distribution::uniform(3).unwrap();
        assert!(p.grouped(&[vec![0, 0], vec![1, 2]]).is_err());
        assert!(p.grouped(&[vec![0, 5], vec![1, 2]]).is_err());
        assert!(p.grouped(&[]).is_err());
    }

    #[test]
    fn mixed_interpolates() {
        let a = Distribution::degenerate(2, 0).unwrap();
        let b = Distribution::degenerate(2, 1).unwrap();
        let m = a.mixed(&b, 0.25).unwrap();
        assert!(close(m.probabilities()[0], 0.25));
        assert!(close(m.probabilities()[1], 0.75));
        assert!(a.mixed(&b, 1.5).is_err());
        let c = Distribution::uniform(3).unwrap();
        assert!(a.mixed(&c, 0.5).is_err());
    }

    #[test]
    fn total_variation_basics() {
        let a = Distribution::degenerate(2, 0).unwrap();
        let b = Distribution::degenerate(2, 1).unwrap();
        assert!(close(a.total_variation(&b).unwrap(), 1.0));
        assert!(close(a.total_variation(&a).unwrap(), 0.0));
        let c = Distribution::uniform(3).unwrap();
        assert!(a.total_variation(&c).is_err());
    }

    #[test]
    fn is_uniform_on_support_with_zeros() {
        let p = Distribution::from_weights(&[1.0, 0.0, 1.0]).unwrap();
        assert!(p.is_uniform_on_support(1e-12));
        let q = Distribution::from_weights(&[1.0, 0.0, 2.0]).unwrap();
        assert!(!q.is_uniform_on_support(1e-12));
    }
}
