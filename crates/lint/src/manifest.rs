//! The checked-in invariant manifest (`LOCK_ORDER` at the workspace
//! root): the single place the enforced contracts are *declared*, so the
//! hierarchy and the module sets are reviewed like code.
//!
//! Format (hand-parsed, line-oriented; `#` starts a comment):
//!
//! ```text
//! [order]
//! 1 seal_lock: seal_lock
//! 2 batch_gate: batch_gate
//! 3 shard_registry: shards, shard
//! 4 publish_state: publish_state
//!
//! [serving]
//! crates/fleet/src/fleet.rs
//! crates/serve/src/            # a trailing slash covers the whole dir
//!
//! [determinism]
//! crates/fleet/src/snapshot.rs
//!
//! [allow]
//! poison crates/fleet/src/fleet.rs "shard lock" -- per-shard registry locks fail fast
//! ```
//!
//! `[order]` declares the lock hierarchy, outermost first: rank, class
//! name, then the identifier tokens whose acquisition marks the class.
//! `[serving]` and `[determinism]` list the modules under the panic-free
//! and determinism contracts. `[allow]` entries are the file-scoped
//! allowlist: rule, file, a quoted statement substring, and a mandatory
//! reason after `--`. Every entry must match at least one suppressed
//! finding or the checker reports it as stale.

use std::fmt;

/// One lock class in the declared hierarchy.
#[derive(Debug, Clone)]
pub struct LockClass {
    /// Position in the hierarchy (lower acquires first).
    pub rank: u32,
    /// Human name used in findings.
    pub name: String,
    /// Identifier tokens whose acquisition statements mark this class.
    pub patterns: Vec<String>,
}

/// One `[allow]` entry.
#[derive(Debug, Clone)]
pub struct AllowEntry {
    /// The rule id the entry suppresses.
    pub rule: String,
    /// Workspace-relative file the entry applies to.
    pub file: String,
    /// Substring the finding's statement must contain.
    pub needle: String,
    /// The written reason (mandatory).
    pub reason: String,
    /// 1-based manifest line, for stale-entry reporting.
    pub line: usize,
}

/// The parsed manifest.
#[derive(Debug, Clone, Default)]
pub struct Manifest {
    /// The lock hierarchy, outermost first.
    pub order: Vec<LockClass>,
    /// Panic-free serving modules (exact paths or `…/` dir prefixes).
    pub serving: Vec<String>,
    /// Determinism-contract modules (exact paths or `…/` dir prefixes).
    pub determinism: Vec<String>,
    /// File-scoped allowlist.
    pub allows: Vec<AllowEntry>,
}

/// A manifest syntax error (line + message).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ManifestError {
    /// 1-based line the error is on.
    pub line: usize,
    /// What was wrong.
    pub message: String,
}

impl fmt::Display for ManifestError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "manifest line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ManifestError {}

impl Manifest {
    /// Parses the manifest text.
    ///
    /// # Errors
    ///
    /// Returns the first [`ManifestError`] encountered: unknown section,
    /// malformed entry, missing reason, or a hierarchy whose ranks are
    /// not strictly increasing.
    pub fn parse(text: &str) -> Result<Self, ManifestError> {
        let mut manifest = Manifest::default();
        let mut section = String::new();
        for (idx, raw) in text.lines().enumerate() {
            let line_no = idx + 1;
            let line = strip_comment(raw).trim().to_string();
            if line.is_empty() {
                continue;
            }
            if let Some(name) = line.strip_prefix('[').and_then(|s| s.strip_suffix(']')) {
                match name {
                    "order" | "serving" | "determinism" | "allow" => {
                        section = name.to_string();
                    }
                    other => {
                        return Err(ManifestError {
                            line: line_no,
                            message: format!("unknown section [{other}]"),
                        })
                    }
                }
                continue;
            }
            match section.as_str() {
                "order" => manifest.order.push(parse_order(&line, line_no)?),
                "serving" => manifest.serving.push(line),
                "determinism" => manifest.determinism.push(line),
                "allow" => manifest.allows.push(parse_allow(&line, line_no)?),
                _ => {
                    return Err(ManifestError {
                        line: line_no,
                        message: "entry before any [section] header".to_string(),
                    })
                }
            }
        }
        let mut last_rank = 0u32;
        for class in &manifest.order {
            if class.rank <= last_rank {
                return Err(ManifestError {
                    line: 0,
                    message: format!(
                        "[order] ranks must be strictly increasing (class {} has rank {})",
                        class.name, class.rank
                    ),
                });
            }
            last_rank = class.rank;
        }
        Ok(manifest)
    }

    /// Whether `path` (workspace-relative, forward slashes) is covered by
    /// `set` (exact file paths or `…/` directory prefixes).
    #[must_use]
    pub fn covers(set: &[String], path: &str) -> bool {
        set.iter()
            .any(|m| path == m || (m.ends_with('/') && path.starts_with(m.as_str())))
    }
}

fn strip_comment(line: &str) -> &str {
    // A `#` outside quotes starts a comment.
    let mut in_quote = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_quote = !in_quote,
            '#' if !in_quote => return &line[..i],
            _ => {}
        }
    }
    line
}

fn parse_order(line: &str, line_no: usize) -> Result<LockClass, ManifestError> {
    let err = |message: String| ManifestError {
        line: line_no,
        message,
    };
    let (rank_s, rest) = line
        .split_once(char::is_whitespace)
        .ok_or_else(|| err("expected `<rank> <name>: <patterns…>`".to_string()))?;
    let rank: u32 = rank_s
        .parse()
        .map_err(|_| err(format!("bad rank `{rank_s}`")))?;
    let (name, patterns) = rest
        .split_once(':')
        .ok_or_else(|| err("expected `<name>: <patterns…>`".to_string()))?;
    let patterns: Vec<String> = patterns
        .split(',')
        .map(|p| p.trim().to_string())
        .filter(|p| !p.is_empty())
        .collect();
    if patterns.is_empty() {
        return Err(err(format!("lock class {name} has no patterns")));
    }
    Ok(LockClass {
        rank,
        name: name.trim().to_string(),
        patterns,
    })
}

fn parse_allow(line: &str, line_no: usize) -> Result<AllowEntry, ManifestError> {
    let err = |message: String| ManifestError {
        line: line_no,
        message,
    };
    let (head, reason) = line
        .split_once("--")
        .ok_or_else(|| err("allow entry needs a `-- <reason>`".to_string()))?;
    let reason = reason.trim().to_string();
    if reason.is_empty() {
        return Err(err("allow entry has an empty reason".to_string()));
    }
    let head = head.trim();
    let (rule, rest) = head
        .split_once(char::is_whitespace)
        .ok_or_else(|| err("expected `<rule> <file> \"<needle>\"`".to_string()))?;
    let (file, quoted) = rest
        .trim()
        .split_once(char::is_whitespace)
        .ok_or_else(|| err("expected `<file> \"<needle>\"`".to_string()))?;
    let quoted = quoted.trim();
    let needle = quoted
        .strip_prefix('"')
        .and_then(|s| s.strip_suffix('"'))
        .ok_or_else(|| err("needle must be double-quoted".to_string()))?;
    if needle.is_empty() {
        return Err(err("needle must be non-empty".to_string()));
    }
    Ok(AllowEntry {
        rule: rule.to_string(),
        file: file.to_string(),
        needle: needle.to_string(),
        reason,
        line: line_no,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"
# comment
[order]
1 seal_lock: seal_lock
2 batch_gate: batch_gate
3 shard_registry: shards, shard

[serving]
crates/fleet/src/fleet.rs
crates/serve/src/

[determinism]
crates/types/src/hash.rs

[allow]
poison crates/fleet/src/fleet.rs "shard lock" -- registry locks fail fast
"#;

    #[test]
    fn parses_all_sections() {
        let m = Manifest::parse(SAMPLE).unwrap();
        assert_eq!(m.order.len(), 3);
        assert_eq!(m.order[2].patterns, vec!["shards", "shard"]);
        assert_eq!(m.serving.len(), 2);
        assert_eq!(m.allows.len(), 1);
        assert_eq!(m.allows[0].reason, "registry locks fail fast");
    }

    #[test]
    fn dir_prefixes_cover_files() {
        let m = Manifest::parse(SAMPLE).unwrap();
        assert!(Manifest::covers(&m.serving, "crates/serve/src/server.rs"));
        assert!(Manifest::covers(&m.serving, "crates/fleet/src/fleet.rs"));
        assert!(!Manifest::covers(
            &m.serving,
            "crates/fleet/src/snapshot.rs"
        ));
    }

    #[test]
    fn rejects_malformed_entries() {
        assert!(Manifest::parse("[order]\nxyz").is_err());
        assert!(
            Manifest::parse("[allow]\npoison f \"x\"").is_err(),
            "missing reason"
        );
        assert!(Manifest::parse("[bogus]\n").is_err());
        assert!(
            Manifest::parse("[order]\n2 a: a\n1 b: b").is_err(),
            "ranks must increase"
        );
    }
}
