//! The six invariant rules, plus the suppression machinery that keeps
//! every exception written down.
//!
//! Suppressions come in two shapes, and *both* are audited:
//!
//! * an inline marker comment whose text starts with `lint:` — e.g. a
//!   trailing `allow(panic) length checked above` — applies to the
//!   statement it shares a line with (or the next statement, when the
//!   marker is a comment line of its own). A marker whose target never
//!   produced a finding is reported as `stale-allow`: suppressions must
//!   not outlive the code they excuse.
//! * a manifest `[allow]` entry, matched against the statement's *raw*
//!   text (so needles can quote `.expect("…")` messages). Unused entries
//!   are reported as `stale-allow` against the manifest itself.
//!
//! `Ordering::Relaxed` justifications use a comment starting with
//! `relaxed:` and the same staleness accounting.

use crate::manifest::Manifest;
use crate::report::{Finding, Report};
use crate::scan::{token_match, ScannedFile};

/// Panic-family tokens denied on serving paths.
const PANIC_TOKENS: &[&str] = &[
    ".unwrap()",
    ".expect(",
    "panic!",
    "unreachable!",
    "todo!",
    "unimplemented!",
];

/// Type/value names that make hashing or reporting nondeterministic.
const DETERMINISM_TOKENS: &[&str] = &[
    "HashMap",
    "HashSet",
    "RandomState",
    "Instant",
    "SystemTime",
    "ThreadId",
];

/// An inline suppression marker collected from the comment channel.
#[derive(Debug)]
struct Marker {
    /// Rule id it suppresses (`relaxed:` comments get rule `relaxed`).
    rule: String,
    /// 1-based line the marker sits on.
    line: usize,
    /// Index of the statement the marker applies to, if any.
    target: Option<usize>,
}

/// Runs every rule over the scanned files and returns the finalized
/// report. Pure: all IO happens in the caller.
#[must_use]
pub fn check(files: &[ScannedFile], manifest: &Manifest) -> Report {
    let mut report = Report {
        findings: Vec::new(),
        files_scanned: files.len(),
        suppressions_used: 0,
    };
    let mut allow_used = vec![false; manifest.allows.len()];
    for file in files {
        let markers = collect_markers(file, &mut report.findings);
        let mut marker_used = vec![false; markers.len()];
        let mut ctx = RuleCtx {
            file,
            manifest,
            markers: &markers,
            marker_used: &mut marker_used,
            allow_used: &mut allow_used,
            findings: &mut report.findings,
            suppressions_used: &mut report.suppressions_used,
        };
        ctx.hygiene();
        ctx.panic_rule();
        ctx.poison_rule();
        ctx.lock_order_rule();
        ctx.determinism_rule();
        ctx.relaxed_rule();
        for (marker, used) in markers.iter().zip(marker_used.iter()) {
            if !used {
                report.findings.push(Finding {
                    file: file.path.clone(),
                    line: marker.line,
                    rule: "stale-allow".to_string(),
                    message: format!(
                        "suppression marker for `{}` matches no finding — remove it",
                        marker.rule
                    ),
                    snippet: snippet_at(file, marker.line),
                });
            }
        }
    }
    for (entry, used) in manifest.allows.iter().zip(allow_used.iter()) {
        if !used {
            report.findings.push(Finding {
                file: "LOCK_ORDER".to_string(),
                line: entry.line,
                rule: "stale-allow".to_string(),
                message: format!(
                    "[allow] entry for `{}` in {} matches no finding — remove it",
                    entry.rule, entry.file
                ),
                snippet: format!("{} {} \"{}\"", entry.rule, entry.file, entry.needle),
            });
        }
    }
    report.finalize();
    report
}

/// Everything one file's rule pass needs; keeps the per-rule signatures
/// from sprawling.
struct RuleCtx<'a> {
    file: &'a ScannedFile,
    manifest: &'a Manifest,
    markers: &'a [Marker],
    marker_used: &'a mut [bool],
    allow_used: &'a mut [bool],
    findings: &'a mut Vec<Finding>,
    suppressions_used: &'a mut usize,
}

impl RuleCtx<'_> {
    /// Whether a finding of `rule` on statement `stmt_idx` is suppressed
    /// by a marker or an `[allow]` entry. Marks what it consumes.
    fn suppressed(&mut self, rule: &str, stmt_idx: usize) -> bool {
        let mut hit = false;
        for (i, marker) in self.markers.iter().enumerate() {
            if marker.rule == rule && marker.target == Some(stmt_idx) {
                self.marker_used[i] = true;
                hit = true;
            }
        }
        let raw = &self.file.statements[stmt_idx].raw;
        for (j, entry) in self.manifest.allows.iter().enumerate() {
            if entry.rule == rule && entry.file == self.file.path && raw.contains(&entry.needle) {
                self.allow_used[j] = true;
                hit = true;
            }
        }
        if hit {
            *self.suppressions_used += 1;
        }
        hit
    }

    fn emit(&mut self, line: usize, rule: &str, message: String) {
        self.findings.push(Finding {
            file: self.file.path.clone(),
            line,
            rule: rule.to_string(),
            message,
            snippet: snippet_at(self.file, line),
        });
    }

    /// Rule `hygiene`: every crate root carries `#![forbid(unsafe_code)]`.
    fn hygiene(&mut self) {
        let path = &self.file.path;
        let is_root = path.ends_with("/src/lib.rs")
            || path.ends_with("/src/main.rs")
            || path.contains("/src/bin/");
        if !is_root {
            return;
        }
        let has = self
            .file
            .lines
            .iter()
            .any(|l| l.code.contains("#![forbid(unsafe_code)]"));
        if !has {
            self.emit(
                1,
                "hygiene",
                "crate root is missing `#![forbid(unsafe_code)]`".to_string(),
            );
        }
    }

    /// Rule `panic`: no panic-family calls or unchecked indexing on
    /// serving paths. Lock-acquisition statements are the poison rule's
    /// jurisdiction and are skipped here, so `m.lock().expect(…)` yields
    /// exactly one finding (the right one).
    fn panic_rule(&mut self) {
        if !Manifest::covers(&self.manifest.serving, &self.file.path) {
            return;
        }
        for (idx, line) in self.file.lines.iter().enumerate() {
            if line.in_test || line.code.trim().is_empty() {
                continue;
            }
            let stmt_idx = self.file.statement_of[idx];
            if is_lock_statement(&self.file.statements[stmt_idx].code) {
                continue;
            }
            let mut hits: Vec<&str> = PANIC_TOKENS
                .iter()
                .filter(|tok| line.code.contains(*tok))
                .copied()
                .collect();
            if has_slice_index(&line.code) {
                hits.push("slice/array indexing");
            }
            if hits.is_empty() || self.suppressed("panic", stmt_idx) {
                continue;
            }
            self.emit(
                idx + 1,
                "panic",
                format!("{} on a serving path can panic", hits.join(", ")),
            );
        }
    }

    /// Rule `poison`: every lock acquisition recovers from poisoning via
    /// `PoisonError::into_inner` (a panicking peer must not cascade), or
    /// carries a written exception.
    fn poison_rule(&mut self) {
        for (stmt_idx, stmt) in self.file.statements.iter().enumerate() {
            if stmt.in_test || !is_lock_statement(&stmt.code) {
                continue;
            }
            if stmt.code.contains("into_inner") {
                continue;
            }
            if self.suppressed("poison", stmt_idx) {
                continue;
            }
            self.emit(
                stmt.first_line,
                "poison",
                "lock acquisition without PoisonError::into_inner recovery".to_string(),
            );
        }
    }

    /// Rule `lock-order`: acquisitions must follow the manifest `[order]`
    /// hierarchy. Scope-aware — a guard taken inside an inner block is
    /// considered dropped once statements fall back below its depth, so
    /// the two-phase seal (shard guards released at inner-block end, then
    /// `seal_lock`) is legal while the reverse nesting is not.
    fn lock_order_rule(&mut self) {
        if self.manifest.order.is_empty() {
            return;
        }
        // (rank, class name, acquisition depth, line)
        let mut held: Vec<(u32, String, i32, usize)> = Vec::new();
        for (stmt_idx, stmt) in self.file.statements.iter().enumerate() {
            if stmt.code.trim().is_empty() {
                continue;
            }
            held.retain(|h| h.2 <= stmt.depth);
            if stmt.in_test || !acquires_lock(&stmt.code) {
                continue;
            }
            for class in &self.manifest.order {
                if !class.patterns.iter().any(|p| token_match(&stmt.code, p)) {
                    continue;
                }
                let worst = held
                    .iter()
                    .filter(|h| h.0 > class.rank)
                    .max_by_key(|h| h.0)
                    .cloned();
                if let Some((_, inner_name, _, inner_line)) = worst {
                    if !self.suppressed("lock-order", stmt_idx) {
                        self.emit(
                            stmt.first_line,
                            "lock-order",
                            format!(
                                "acquired `{}` while holding `{}` (line {}) — violates LOCK_ORDER",
                                class.name, inner_name, inner_line
                            ),
                        );
                    }
                }
                held.push((class.rank, class.name.clone(), stmt.depth, stmt.first_line));
            }
        }
    }

    /// Rule `determinism`: hash-, report-, and golden-feeding modules must
    /// not use unordered containers or wall-clock/thread identity.
    fn determinism_rule(&mut self) {
        if !Manifest::covers(&self.manifest.determinism, &self.file.path) {
            return;
        }
        for (idx, line) in self.file.lines.iter().enumerate() {
            if line.in_test || line.code.trim().is_empty() {
                continue;
            }
            let mut hits: Vec<&str> = DETERMINISM_TOKENS
                .iter()
                .filter(|tok| token_match(&line.code, tok))
                .copied()
                .collect();
            if line.code.contains("thread::current") {
                hits.push("thread::current");
            }
            if hits.is_empty() {
                continue;
            }
            let stmt_idx = self.file.statement_of[idx];
            if self.suppressed("determinism", stmt_idx) {
                continue;
            }
            self.emit(
                idx + 1,
                "determinism",
                format!("{} in a determinism-contract module", hits.join(", ")),
            );
        }
    }

    /// Rule `relaxed`: every `Ordering::Relaxed` carries a `relaxed:`
    /// justification comment explaining why no cross-thread ordering is
    /// needed.
    fn relaxed_rule(&mut self) {
        for (idx, line) in self.file.lines.iter().enumerate() {
            if line.in_test || !token_match(&line.code, "Relaxed") {
                continue;
            }
            let stmt_idx = self.file.statement_of[idx];
            let stmt = &self.file.statements[stmt_idx];
            if stmt.code.trim_start().starts_with("use ") {
                continue;
            }
            if self.suppressed("relaxed", stmt_idx) {
                continue;
            }
            self.emit(
                idx + 1,
                "relaxed",
                "Ordering::Relaxed without a `relaxed:` justification comment".to_string(),
            );
        }
    }
}

/// Whether the statement acquires a lock: `.lock()`, zero-argument
/// `.read()`/`.write()` (the `RwLock` signatures — `io::Read::read` and
/// `io::Write::write` always take a buffer), or their `try_` variants.
fn is_lock_statement(code: &str) -> bool {
    code.contains(".lock()")
        || code.contains(".read()")
        || code.contains(".write()")
        || code.contains(".try_lock()")
        || code.contains(".try_read()")
        || code.contains(".try_write()")
}

/// Broader predicate for the lock-order rule: raw acquisitions *plus*
/// calls through the workspace's `*_recover` poison-recovery helpers,
/// which are how the ordered fleet locks are actually taken.
fn acquires_lock(code: &str) -> bool {
    is_lock_statement(code)
        || code.contains("lock_recover(")
        || code.contains("read_recover(")
        || code.contains("write_recover(")
}

/// Whether the (already comment-stripped, literal-blanked) line contains a
/// slice/array index: a `[` immediately after an identifier char, `)`,
/// `]`, or `?`. Excludes attributes (`#[`), macros (`vec![`), and type
/// positions (`: [u8; 4]`).
fn has_slice_index(code: &str) -> bool {
    let chars: Vec<char> = code.chars().collect();
    for (i, &c) in chars.iter().enumerate() {
        if c != '[' || i == 0 {
            continue;
        }
        let prev = chars[i - 1];
        if prev.is_alphanumeric() || prev == '_' || prev == ')' || prev == ']' || prev == '?' {
            return true;
        }
    }
    false
}

/// Collects inline markers (`lint: allow(<rule>) <reason>` and
/// `relaxed: <reason>` comments) and reports malformed ones directly.
fn collect_markers(file: &ScannedFile, findings: &mut Vec<Finding>) -> Vec<Marker> {
    let mut markers = Vec::new();
    for (idx, line) in file.lines.iter().enumerate() {
        let comment = line.comment.trim_start();
        let (rule, rest) = if let Some(rest) = comment.strip_prefix("lint:") {
            let rest = rest.trim_start();
            let Some(inner) = rest.strip_prefix("allow(") else {
                findings.push(Finding {
                    file: file.path.clone(),
                    line: idx + 1,
                    rule: "stale-allow".to_string(),
                    message: "malformed marker — expected `lint: allow(<rule>) <reason>`"
                        .to_string(),
                    snippet: snippet_at(file, idx + 1),
                });
                continue;
            };
            let Some(close) = inner.find(')') else {
                findings.push(Finding {
                    file: file.path.clone(),
                    line: idx + 1,
                    rule: "stale-allow".to_string(),
                    message: "malformed marker — unclosed `allow(`".to_string(),
                    snippet: snippet_at(file, idx + 1),
                });
                continue;
            };
            (inner[..close].trim().to_string(), inner[close + 1..].trim())
        } else if let Some(rest) = comment.strip_prefix("relaxed:") {
            ("relaxed".to_string(), rest.trim())
        } else {
            continue;
        };
        if rest.is_empty() {
            findings.push(Finding {
                file: file.path.clone(),
                line: idx + 1,
                rule: "stale-allow".to_string(),
                message: format!("suppression marker for `{rule}` has no written reason"),
                snippet: snippet_at(file, idx + 1),
            });
            continue;
        }
        markers.push(Marker {
            rule,
            line: idx + 1,
            target: target_statement(file, idx),
        });
    }
    markers
}

/// The statement a marker on 0-based line `idx` applies to: the statement
/// sharing the line if it has code, else the next statement with code
/// (the marker-on-its-own-line form).
fn target_statement(file: &ScannedFile, idx: usize) -> Option<usize> {
    let s = file.statement_of.get(idx).copied()?;
    if !file.statements[s].code.trim().is_empty() {
        return Some(s);
    }
    ((s + 1)..file.statements.len()).find(|&n| !file.statements[n].code.trim().is_empty())
}

/// The raw source line, trimmed and bounded, for the finding snippet.
fn snippet_at(file: &ScannedFile, line: usize) -> String {
    let raw = file
        .lines
        .get(line.saturating_sub(1))
        .map_or("", |l| l.raw.trim());
    let mut s: String = raw.chars().take(160).collect();
    if raw.chars().count() > 160 {
        s.push('…');
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scan::scan;

    fn manifest() -> Manifest {
        Manifest::parse(
            "[order]\n\
             1 seal_lock: seal_lock\n\
             2 batch_gate: batch_gate\n\
             3 shard_registry: shards\n\
             [serving]\n\
             crates/x/src/\n\
             [determinism]\n\
             crates/x/src/hash.rs\n",
        )
        .unwrap()
    }

    fn run(path: &str, src: &str) -> Report {
        let file = scan(path, src);
        check(&[file], &manifest())
    }

    #[test]
    fn panic_rule_fires_and_markers_suppress() {
        let bad = run(
            "crates/x/src/a.rs",
            "fn f(v: &[u8]) { v.first().unwrap(); }\n",
        );
        assert_eq!(bad.findings.len(), 1);
        assert_eq!(bad.findings[0].rule, "panic");
        let ok = run(
            "crates/x/src/a.rs",
            "fn f(v: &[u8]) { v.first().unwrap(); } // lint: allow(panic) caller guarantees nonempty\n",
        );
        assert!(ok.is_clean(), "{:?}", ok.findings);
        assert_eq!(ok.suppressions_used, 1);
    }

    #[test]
    fn indexing_is_a_panic_finding_but_attrs_are_not() {
        let bad = run("crates/x/src/a.rs", "fn f(v: &[u8]) -> u8 { v[0] }\n");
        assert_eq!(bad.findings.len(), 1, "{:?}", bad.findings);
        let ok = run(
            "crates/x/src/a.rs",
            "#[derive(Clone)]\nstruct S { b: [u8; 4] }\nfn g() -> Vec<u8> { vec![1, 2] }\n",
        );
        assert!(ok.is_clean(), "{:?}", ok.findings);
    }

    #[test]
    fn poison_rule_owns_lock_statements() {
        // `.lock().expect(…)` is a poison finding, never a panic one.
        let bad = run(
            "crates/x/src/a.rs",
            "fn f(m: &std::sync::Mutex<u8>) { let _g = m.lock().expect(\"x\"); }\n",
        );
        assert_eq!(bad.findings.len(), 1, "{:?}", bad.findings);
        assert_eq!(bad.findings[0].rule, "poison");
        let ok = run(
            "crates/x/src/a.rs",
            "fn f(m: &std::sync::Mutex<u8>) { let _g = m.lock().unwrap_or_else(std::sync::PoisonError::into_inner); }\n",
        );
        assert!(ok.is_clean(), "{:?}", ok.findings);
    }

    #[test]
    fn lock_order_violation_detected_and_scoping_respected() {
        let bad = "fn f(&self) {\n\
                   \x20   let _s = self.shards[0].lock().unwrap_or_else(PoisonError::into_inner);\n\
                   \x20   let _g = self.seal_lock.lock().unwrap_or_else(PoisonError::into_inner);\n\
                   }\n";
        let r = run("crates/x/src/a.rs", bad);
        assert_eq!(r.findings.len(), 1, "{:?}", r.findings);
        assert_eq!(r.findings[0].rule, "lock-order");
        // Same pair is legal when the inner guard dies in an inner block.
        let ok = "fn f(&self) {\n\
                  \x20   {\n\
                  \x20       let _s = self.shards[0].lock().unwrap_or_else(PoisonError::into_inner);\n\
                  \x20   }\n\
                  \x20   let _g = self.seal_lock.lock().unwrap_or_else(PoisonError::into_inner);\n\
                  }\n";
        let r = run("crates/x/src/a.rs", ok);
        assert!(r.is_clean(), "{:?}", r.findings);
    }

    #[test]
    fn determinism_rule_scoped_to_manifest_modules() {
        let bad = run(
            "crates/x/src/hash.rs",
            "use std::collections::HashMap;\nfn f() { let _m: HashMap<u8, u8> = HashMap::new(); }\n",
        );
        assert!(bad.findings.iter().all(|f| f.rule == "determinism"));
        assert_eq!(bad.findings.len(), 2, "{:?}", bad.findings);
        // Same tokens outside the determinism set: no findings.
        let ok = run(
            "crates/x/src/other.rs",
            "use std::collections::HashMap;\nfn f() { let _m: HashMap<u8, u8> = HashMap::new(); }\n",
        );
        assert!(ok.is_clean(), "{:?}", ok.findings);
    }

    #[test]
    fn relaxed_requires_justification() {
        let bad = run(
            "crates/y/src/a.rs",
            "fn f(c: &std::sync::atomic::AtomicU64) { c.fetch_add(1, std::sync::atomic::Ordering::Relaxed); }\n",
        );
        assert_eq!(bad.findings.len(), 1);
        assert_eq!(bad.findings[0].rule, "relaxed");
        let ok = run(
            "crates/y/src/a.rs",
            "fn f(c: &std::sync::atomic::AtomicU64) {\n\
             \x20   // relaxed: monotonic stat counter, read only by the same thread's report\n\
             \x20   c.fetch_add(1, std::sync::atomic::Ordering::Relaxed);\n\
             }\n",
        );
        assert!(ok.is_clean(), "{:?}", ok.findings);
    }

    #[test]
    fn stale_markers_are_findings() {
        let r = run(
            "crates/y/src/a.rs",
            "// lint: allow(panic) nothing here actually panics\nfn f() {}\n",
        );
        assert_eq!(r.findings.len(), 1, "{:?}", r.findings);
        assert_eq!(r.findings[0].rule, "stale-allow");
        let no_reason = run(
            "crates/x/src/a.rs",
            "fn f() { g(); } // lint: allow(panic)\n",
        );
        assert_eq!(no_reason.findings.len(), 1);
        assert!(no_reason.findings[0].message.contains("no written reason"));
    }

    #[test]
    fn stale_manifest_allows_are_findings() {
        let mut m = manifest();
        m.allows.push(crate::manifest::AllowEntry {
            rule: "poison".to_string(),
            file: "crates/x/src/a.rs".to_string(),
            needle: "never present".to_string(),
            reason: "r".to_string(),
            line: 9,
        });
        let file = scan("crates/x/src/a.rs", "fn f() {}\n");
        let r = check(&[file], &m);
        assert_eq!(r.findings.len(), 1, "{:?}", r.findings);
        assert_eq!(r.findings[0].rule, "stale-allow");
        assert_eq!(r.findings[0].file, "LOCK_ORDER");
    }

    #[test]
    fn hygiene_requires_forbid_unsafe() {
        let bad = run("crates/y/src/lib.rs", "pub fn f() {}\n");
        assert_eq!(bad.findings.len(), 1);
        assert_eq!(bad.findings[0].rule, "hygiene");
        let ok = run(
            "crates/y/src/lib.rs",
            "#![forbid(unsafe_code)]\npub fn f() {}\n",
        );
        assert!(ok.is_clean());
        let non_root = run("crates/y/src/util.rs", "pub fn f() {}\n");
        assert!(non_root.is_clean(), "only crate roots are checked");
    }

    #[test]
    fn test_code_is_exempt() {
        let src = "#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { x().unwrap(); m.lock().expect(\"poisoned\"); }\n}\n";
        let r = run("crates/x/src/a.rs", src);
        assert!(r.is_clean(), "{:?}", r.findings);
    }
}
