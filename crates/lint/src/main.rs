//! fi-lint CLI: lint the workspace, print findings, optionally write the
//! machine-readable report, and exit non-zero when the tree is dirty.
//!
//! ```text
//! fi-lint [--root <dir>] [--report <file>] [--quiet]
//! ```
//!
//! Exit codes: `0` clean, `1` findings, `2` configuration/IO error.

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut report_path: Option<PathBuf> = None;
    let mut quiet = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => match args.next() {
                Some(v) => root = Some(PathBuf::from(v)),
                None => return usage("--root needs a value"),
            },
            "--report" => match args.next() {
                Some(v) => report_path = Some(PathBuf::from(v)),
                None => return usage("--report needs a value"),
            },
            "--quiet" => quiet = true,
            "--help" | "-h" => {
                println!("usage: fi-lint [--root <dir>] [--report <file>] [--quiet]");
                return ExitCode::SUCCESS;
            }
            other => return usage(&format!("unknown argument `{other}`")),
        }
    }
    // Default root: the workspace this binary was built from, so
    // `cargo run -p fi-lint` just works from anywhere in the tree.
    let root = root.unwrap_or_else(|| {
        PathBuf::from(env!("CARGO_MANIFEST_DIR"))
            .join("..")
            .join("..")
    });

    let report = match fi_lint::run_lint(&root) {
        Ok(report) => report,
        Err(err) => {
            eprintln!("fi-lint: error: {err}");
            return ExitCode::from(2);
        }
    };
    if let Some(path) = report_path {
        if let Err(err) = std::fs::write(&path, report.to_json()) {
            eprintln!("fi-lint: error: writing {}: {err}", path.display());
            return ExitCode::from(2);
        }
    }
    if !quiet || !report.is_clean() {
        print!("{}", report.to_text());
    }
    if report.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn usage(msg: &str) -> ExitCode {
    eprintln!("fi-lint: error: {msg}");
    eprintln!("usage: fi-lint [--root <dir>] [--report <file>] [--quiet]");
    ExitCode::from(2)
}
