//! Findings and the stable machine-readable report.
//!
//! The JSON emitted here is byte-stable for a given tree: findings are
//! sorted by `(file, line, rule)`, keys are emitted in a fixed order, and
//! nothing time- or environment-dependent is included — so CI can diff
//! reports and the artifact is reproducible.

use std::fmt;

/// One rule violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Workspace-relative file (forward slashes).
    pub file: String,
    /// 1-based line.
    pub line: usize,
    /// Stable rule id (`panic`, `poison`, `lock-order`, `determinism`,
    /// `relaxed`, `hygiene`, `stale-allow`).
    pub rule: String,
    /// What was found.
    pub message: String,
    /// The offending source line, trimmed.
    pub snippet: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}\n    {}",
            self.file, self.line, self.rule, self.message, self.snippet
        )
    }
}

/// A whole lint run, ready to render.
#[derive(Debug, Default)]
pub struct Report {
    /// All findings, sorted by `(file, line, rule)`.
    pub findings: Vec<Finding>,
    /// Files scanned (count only; the list would bloat the artifact).
    pub files_scanned: usize,
    /// Suppressions actually used (marker or allowlist), for the summary.
    pub suppressions_used: usize,
}

impl Report {
    /// Sorts findings into the stable report order.
    pub fn finalize(&mut self) {
        self.findings
            .sort_by(|a, b| (&a.file, a.line, &a.rule).cmp(&(&b.file, b.line, &b.rule)));
    }

    /// Whether the tree is clean.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }

    /// The stable JSON document.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n  \"version\": 1,\n");
        out.push_str(&format!("  \"files_scanned\": {},\n", self.files_scanned));
        out.push_str(&format!(
            "  \"suppressions_used\": {},\n",
            self.suppressions_used
        ));
        out.push_str(&format!("  \"finding_count\": {},\n", self.findings.len()));
        out.push_str("  \"findings\": [");
        for (i, f) in self.findings.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    {");
            out.push_str(&format!("\"file\": {}, ", json_str(&f.file)));
            out.push_str(&format!("\"line\": {}, ", f.line));
            out.push_str(&format!("\"rule\": {}, ", json_str(&f.rule)));
            out.push_str(&format!("\"message\": {}, ", json_str(&f.message)));
            out.push_str(&format!("\"snippet\": {}", json_str(&f.snippet)));
            out.push('}');
        }
        if !self.findings.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("]\n}\n");
        out
    }

    /// The human-readable summary printed to stdout.
    #[must_use]
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        for f in &self.findings {
            out.push_str(&f.to_string());
            out.push('\n');
        }
        out.push_str(&format!(
            "fi-lint: {} finding(s) across {} file(s) scanned ({} suppression(s) in use)\n",
            self.findings.len(),
            self.files_scanned,
            self.suppressions_used
        ));
        out
    }
}

/// JSON string escaping (the subset the report needs: control chars,
/// quotes, backslashes; source is UTF-8 already).
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_is_stable_and_escaped() {
        let mut report = Report {
            findings: vec![
                Finding {
                    file: "b.rs".into(),
                    line: 2,
                    rule: "panic".into(),
                    message: "x".into(),
                    snippet: "say \"hi\"\\".into(),
                },
                Finding {
                    file: "a.rs".into(),
                    line: 9,
                    rule: "poison".into(),
                    message: "y".into(),
                    snippet: "s".into(),
                },
            ],
            files_scanned: 2,
            suppressions_used: 0,
        };
        report.finalize();
        assert_eq!(report.findings[0].file, "a.rs", "sorted by file");
        let json = report.to_json();
        assert!(json.contains("\\\"hi\\\"\\\\"));
        assert_eq!(json, report.to_json(), "byte-stable");
    }

    #[test]
    fn clean_report_renders_empty_array() {
        let report = Report::default();
        assert!(report.is_clean());
        assert!(report.to_json().contains("\"findings\": []"));
    }
}
