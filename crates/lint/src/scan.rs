//! A hand-rolled Rust line scanner: splits source into per-line *code*
//! and *comment* channels so the rules never fire on text inside string
//! literals or doc comments, and never miss a marker because it shares a
//! line with code.
//!
//! This is deliberately **not** a parser. The rules it feeds are
//! substring/token checks over three derived views:
//!
//! * [`Line::code`] — the line with comments stripped and the *contents*
//!   of string/char literals blanked to spaces (delimiters kept, so
//!   bracket depth still balances);
//! * [`Line::comment`] — the text of any `//` comment on the line
//!   (block-comment text is folded in too), where suppression markers and
//!   `relaxed:` justifications live;
//! * [`Statement`]s — physical lines joined until brackets balance and a
//!   terminator is seen, so a method chain split across six lines is
//!   matched as one unit (poison recovery, lock classification).
//!
//! The scanner also tracks `#[cfg(test)]` module regions and `#[test]`
//! functions by brace depth: every rule skips them, because the contracts
//! under enforcement are *serving-path* contracts and tests deliberately
//! panic, lock-unwrap, and iterate hash maps.

/// One physical source line, split into channels.
#[derive(Debug, Clone, Default)]
pub struct Line {
    /// The original source line, untouched (snippets, allow-needle match).
    pub raw: String,
    /// Code with comments stripped and literal contents blanked.
    pub code: String,
    /// Comment text on this line (line + block comments, concatenated).
    pub comment: String,
    /// Whether any part of the line is inside a `#[cfg(test)]` module or
    /// `#[test]` function body.
    pub in_test: bool,
    /// Brace depth at the *start* of the line.
    pub depth: i32,
}

/// A logical statement: one or more physical lines joined until brackets
/// balanced and a `;`/`{`/`}` terminator was seen.
#[derive(Debug, Clone)]
pub struct Statement {
    /// Joined code text of the statement (single-space separated).
    pub code: String,
    /// Joined raw text (trimmed lines, single-space separated) — what
    /// manifest allow-needles match against, since `code` blanks string
    /// literals such as `.expect("…")` messages.
    pub raw: String,
    /// 1-based first physical line.
    pub first_line: usize,
    /// 1-based last physical line.
    pub last_line: usize,
    /// Brace depth at the statement's first line.
    pub depth: i32,
    /// Whether the statement lies in a test region.
    pub in_test: bool,
}

/// A scanned file: lines, statements, and the line→statement index.
#[derive(Debug)]
pub struct ScannedFile {
    /// Workspace-relative path (forward slashes).
    pub path: String,
    /// 0-based vector of physical lines.
    pub lines: Vec<Line>,
    /// Logical statements in order.
    pub statements: Vec<Statement>,
    /// For each 0-based line, the index into `statements` covering it.
    pub statement_of: Vec<usize>,
}

/// Lexer state that survives across lines.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mode {
    Code,
    /// Inside a (possibly nested) block comment; the payload is nesting depth.
    Block(u32),
    /// Inside a normal `"…"` string literal.
    Str,
    /// Inside a raw string with this many `#` marks.
    RawStr(u32),
}

/// Splits `source` into per-line code/comment channels and statements.
#[must_use]
pub fn scan(path: &str, source: &str) -> ScannedFile {
    let mut lines = Vec::new();
    let mut mode = Mode::Code;
    for raw in source.lines() {
        let (mut line, next) = scan_line(raw, mode);
        line.raw = raw.to_string();
        mode = next;
        lines.push(line);
    }
    mark_depths_and_tests(&mut lines);
    let (statements, statement_of) = join_statements(&lines);
    ScannedFile {
        path: path.to_string(),
        lines,
        statements,
        statement_of,
    }
}

/// Lexes one physical line starting in `mode`, returning the split line
/// and the mode the next line starts in.
fn scan_line(raw: &str, mut mode: Mode) -> (Line, Mode) {
    let mut code = String::with_capacity(raw.len());
    let mut comment = String::new();
    let chars: Vec<char> = raw.chars().collect();
    let mut i = 0usize;
    while i < chars.len() {
        let c = chars[i];
        match mode {
            Mode::Block(depth) => {
                if c == '*' && chars.get(i + 1) == Some(&'/') {
                    mode = if depth > 1 {
                        Mode::Block(depth - 1)
                    } else {
                        Mode::Code
                    };
                    i += 2;
                } else if c == '/' && chars.get(i + 1) == Some(&'*') {
                    mode = Mode::Block(depth + 1);
                    i += 2;
                } else {
                    comment.push(c);
                    i += 1;
                }
            }
            Mode::Str => {
                if c == '\\' {
                    // Escape: consume the next char blindly (covers \" and \\).
                    code.push(' ');
                    if i + 1 < chars.len() {
                        code.push(' ');
                    }
                    i += 2;
                } else if c == '"' {
                    code.push('"');
                    mode = Mode::Code;
                    i += 1;
                } else {
                    code.push(' ');
                    i += 1;
                }
            }
            Mode::RawStr(hashes) => {
                if c == '"' && closes_raw(&chars, i, hashes) {
                    code.push('"');
                    for _ in 0..hashes {
                        code.push(' ');
                    }
                    mode = Mode::Code;
                    i += 1 + hashes as usize;
                } else {
                    code.push(' ');
                    i += 1;
                }
            }
            Mode::Code => {
                if c == '/' && chars.get(i + 1) == Some(&'/') {
                    // Line comment: the rest of the line is comment text.
                    comment.push_str(&chars[i + 2..].iter().collect::<String>());
                    break;
                } else if c == '/' && chars.get(i + 1) == Some(&'*') {
                    mode = Mode::Block(1);
                    i += 2;
                } else if c == '"' {
                    code.push('"');
                    mode = Mode::Str;
                    i += 1;
                } else if let Some(hashes) = raw_string_open(&chars, i) {
                    // r"…", r#"…"#, br#"…"# — skip past the opening quote.
                    let quote_at = chars[i..].iter().position(|&ch| ch == '"').unwrap_or(0);
                    for _ in 0..=quote_at {
                        code.push(' ');
                    }
                    mode = Mode::RawStr(hashes);
                    i += quote_at + 1;
                } else if c == '\'' {
                    // Char literal vs lifetime.
                    if let Some(len) = char_literal_len(&chars, i) {
                        code.push('\'');
                        for _ in 1..len {
                            code.push(' ');
                        }
                        i += len;
                    } else {
                        // A lifetime: keep the tick, scan on.
                        code.push('\'');
                        i += 1;
                    }
                } else {
                    code.push(c);
                    i += 1;
                }
            }
        }
    }
    (
        Line {
            raw: String::new(),
            code,
            comment,
            in_test: false,
            depth: 0,
        },
        match mode {
            // Plain strings and char literals do not cross lines unescaped
            // in this codebase; raw strings and block comments do.
            Mode::Str => Mode::Str,
            other => other,
        },
    )
}

/// Does position `i` (a `"`) close a raw string with `hashes` marks?
fn closes_raw(chars: &[char], i: usize, hashes: u32) -> bool {
    let mut n = 0u32;
    while n < hashes {
        if chars.get(i + 1 + n as usize) != Some(&'#') {
            return false;
        }
        n += 1;
    }
    true
}

/// Detects a raw-string opener (`r"`, `r#"`, `br##"` …) at `i`; returns
/// the hash count.
fn raw_string_open(chars: &[char], i: usize) -> Option<u32> {
    // Must not be the tail of an identifier (e.g. `for r in …` vs `var`).
    if i > 0 && is_ident(chars[i - 1]) {
        return None;
    }
    let mut j = i;
    if chars.get(j) == Some(&'b') {
        j += 1;
    }
    if chars.get(j) != Some(&'r') {
        return None;
    }
    j += 1;
    let mut hashes = 0u32;
    while chars.get(j) == Some(&'#') {
        hashes += 1;
        j += 1;
    }
    if chars.get(j) == Some(&'"') {
        Some(hashes)
    } else {
        None
    }
}

/// Length of a char literal starting at the `'` at `i`, or `None` if the
/// tick starts a lifetime.
fn char_literal_len(chars: &[char], i: usize) -> Option<usize> {
    match chars.get(i + 1) {
        // Escape: scan to the closing tick ('\n', '\u{1F600}', '\'').
        Some('\\') => {
            let mut j = i + 3; // first candidate closer (skip the escaped char)
            while j < chars.len() && j < i + 12 {
                if chars[j] == '\'' {
                    return Some(j - i + 1);
                }
                j += 1;
            }
            None
        }
        // 'x' — a closing tick two ahead makes it a literal; otherwise
        // it's a lifetime ('a, 'static) or a loop label.
        Some(_) if chars.get(i + 2) == Some(&'\'') => Some(3),
        _ => None,
    }
}

fn is_ident(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Second pass: record per-line brace depth and mark `#[cfg(test)]` mod /
/// `#[test]` fn regions.
fn mark_depths_and_tests(lines: &mut [Line]) {
    let mut depth = 0i32;
    // (close_depth) stack of test regions: the region ends when depth
    // returns to the recorded value after having entered the block.
    let mut test_regions: Vec<i32> = Vec::new();
    // Pending attribute state: Some(depth) once `#[cfg(test)]` / `#[test]`
    // was seen and we are waiting for the item's opening brace.
    let mut pending_attr: Option<i32> = None;
    for line in lines.iter_mut() {
        line.depth = depth;
        let code = line.code.clone();
        let trimmed = code.trim();
        if trimmed.contains("#[cfg(test)]") || trimmed.contains("#[test]") {
            pending_attr = Some(depth);
        }
        line.in_test = !test_regions.is_empty() || pending_attr.is_some();
        for c in code.chars() {
            match c {
                '{' => {
                    if let Some(d) = pending_attr {
                        if depth == d {
                            // The attributed item's body opens here.
                            test_regions.push(d);
                            pending_attr = None;
                        }
                    }
                    depth += 1;
                }
                '}' => {
                    depth -= 1;
                    if let Some(&d) = test_regions.last() {
                        if depth <= d {
                            test_regions.pop();
                        }
                    }
                }
                _ => {}
            }
        }
        // An attributed item that never opened a brace on its line (e.g.
        // `#[cfg(test)] use …;`) only shields its own line — clear the
        // pending attr once a terminated statement passed.
        if let Some(d) = pending_attr {
            if depth == d && trimmed.ends_with(';') {
                pending_attr = None;
            }
        }
    }
}

/// Third pass: join physical lines into statements.
fn join_statements(lines: &[Line]) -> (Vec<Statement>, Vec<usize>) {
    let mut statements = Vec::new();
    let mut statement_of = vec![0usize; lines.len()];
    let mut buf = String::new();
    let mut raw_buf = String::new();
    let mut first: Option<usize> = None;
    let mut rel: i32 = 0; // bracket depth relative to statement start
    for (idx, line) in lines.iter().enumerate() {
        let code = line.code.trim();
        if first.is_none() {
            if code.is_empty() {
                // Blank / pure-comment line outside any statement: give it
                // its own empty statement slot.
                statement_of[idx] = statements.len();
                statements.push(Statement {
                    code: String::new(),
                    raw: String::new(),
                    first_line: idx + 1,
                    last_line: idx + 1,
                    depth: line.depth,
                    in_test: line.in_test,
                });
                continue;
            }
            first = Some(idx);
        }
        if !buf.is_empty() {
            buf.push(' ');
        }
        buf.push_str(code);
        if !raw_buf.is_empty() {
            raw_buf.push(' ');
        }
        raw_buf.push_str(line.raw.trim());
        // Only parens/brackets force joining: braces *terminate*
        // statements (a `fn f() {` opener ends its own statement), while
        // an unbalanced `(` — e.g. `.map(|s| {` — keeps the closure body
        // inside the chain statement that owns it.
        for c in code.chars() {
            match c {
                '(' | '[' => rel += 1,
                ')' | ']' => rel -= 1,
                _ => {}
            }
        }
        let terminated = rel <= 0
            && (code.ends_with(';')
                || code.ends_with('{')
                || code.ends_with('}')
                || code.ends_with(','));
        if terminated {
            let start = first.unwrap_or(idx);
            let stmt = Statement {
                code: std::mem::take(&mut buf),
                raw: std::mem::take(&mut raw_buf),
                first_line: start + 1,
                last_line: idx + 1,
                depth: lines[start].depth,
                in_test: lines[start].in_test,
            };
            for s in statement_of.iter_mut().take(idx + 1).skip(start) {
                *s = statements.len();
            }
            statements.push(stmt);
            first = None;
            rel = 0;
        }
    }
    if let Some(start) = first {
        let stmt = Statement {
            code: buf,
            raw: raw_buf,
            first_line: start + 1,
            last_line: lines.len(),
            depth: lines[start].depth,
            in_test: lines[start].in_test,
        };
        for s in statement_of.iter_mut().take(lines.len()).skip(start) {
            *s = statements.len();
        }
        statements.push(stmt);
    }
    (statements, statement_of)
}

/// Whether `needle` occurs in `haystack` as a whole token (not embedded in
/// a longer identifier on either side).
#[must_use]
pub fn token_match(haystack: &str, needle: &str) -> bool {
    let mut from = 0usize;
    while let Some(pos) = haystack[from..].find(needle) {
        let at = from + pos;
        let before_ok = at == 0 || !haystack[..at].chars().next_back().is_some_and(is_ident);
        let after = at + needle.len();
        let after_ok =
            after >= haystack.len() || !haystack[after..].chars().next().is_some_and(is_ident);
        if before_ok && after_ok {
            return true;
        }
        from = at + needle.len().max(1);
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comments_and_strings_are_split_out() {
        let f = scan(
            "t.rs",
            "let x = \"a.unwrap() // not code\"; // real comment unwrap()\n",
        );
        assert!(!f.lines[0].code.contains("unwrap"));
        assert!(f.lines[0].comment.contains("real comment unwrap()"));
        assert!(f.lines[0].code.contains("let x ="));
    }

    #[test]
    fn raw_strings_and_escapes_are_blanked() {
        let f = scan(
            "t.rs",
            "let a = r#\"panic!(\"x\")\"#;\nlet b = \"esc \\\" .lock()\";\n",
        );
        assert!(!f.lines[0].code.contains("panic!"));
        assert!(!f.lines[1].code.contains(".lock()"));
    }

    #[test]
    fn nested_block_comments_close_correctly() {
        let f = scan("t.rs", "/* a /* b */ still comment */ let x = 1;\n");
        assert!(f.lines[0].code.contains("let x = 1;"));
        assert!(f.lines[0].comment.contains("still comment"));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let f = scan("t.rs", "fn f<'a>(x: &'a str) -> &'a str { x }\n");
        assert!(f.lines[0].code.contains("fn f<'a>(x: &'a str)"));
        let g = scan("t.rs", "let c = 'x'; let nl = '\\n';\n");
        assert!(!g.lines[0].code.contains('x'));
    }

    #[test]
    fn cfg_test_modules_are_marked() {
        let src = "fn live() {}\n#[cfg(test)]\nmod tests {\n    fn t() { x.unwrap(); }\n}\nfn after() {}\n";
        let f = scan("t.rs", src);
        assert!(!f.lines[0].in_test);
        assert!(f.lines[3].in_test, "inside the test mod");
        assert!(!f.lines[5].in_test, "after the test mod");
    }

    #[test]
    fn statements_join_across_lines() {
        let src = "let _gate = self\n    .batch_gate\n    .read()\n    .unwrap_or_else(PoisonError::into_inner);\n";
        let f = scan("t.rs", src);
        let stmt = &f.statements[f.statement_of[0]];
        assert!(stmt.code.contains(".read()"));
        assert!(stmt.code.contains("PoisonError::into_inner"));
        assert_eq!(stmt.first_line, 1);
        assert_eq!(stmt.last_line, 4);
    }

    #[test]
    fn token_match_respects_boundaries() {
        assert!(token_match("self.batch_gate.read()", "batch_gate"));
        assert!(!token_match("self.dispatch_gate.lock()", "batch_gate"));
        assert!(!token_match("shards_total", "shards"));
        assert!(token_match("self.shards[0].lock()", "shards"));
    }
}
