//! fi-lint: the workspace invariant checker.
//!
//! Mechanically enforces the contracts the fleet's serving story depends
//! on — panic-free serving paths, poison recovery on every lock, the
//! `LOCK_ORDER` acquisition hierarchy, deterministic hash/report modules,
//! justified relaxed atomics, and `#![forbid(unsafe_code)]` crate roots —
//! so they hold by construction instead of by review vigilance.
//!
//! Offline and dependency-free by design: a hand-rolled line scanner
//! ([`scan`]) feeds token-level rules ([`rules`]) configured by the
//! checked-in manifest ([`manifest`]); [`report`] renders a byte-stable
//! machine-readable artifact for CI.

#![forbid(unsafe_code)]

pub mod manifest;
pub mod report;
pub mod rules;
pub mod scan;

use std::fmt;
use std::fs;
use std::path::{Path, PathBuf};

use manifest::{Manifest, ManifestError};
use report::Report;
use scan::ScannedFile;

/// Name of the manifest file at the workspace root.
pub const MANIFEST_FILE: &str = "LOCK_ORDER";

/// A configuration or IO failure (distinct from findings: findings are
/// the *product*, these abort the run).
#[derive(Debug)]
pub enum LintError {
    /// Reading a file failed.
    Io(PathBuf, String),
    /// The `LOCK_ORDER` manifest is malformed.
    Manifest(ManifestError),
    /// The root `Cargo.toml` has no parsable `members` list.
    NoMembers(PathBuf),
}

impl fmt::Display for LintError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LintError::Io(path, err) => write!(f, "{}: {err}", path.display()),
            LintError::Manifest(err) => write!(f, "{}: {err}", MANIFEST_FILE),
            LintError::NoMembers(path) => {
                write!(f, "{}: no workspace members list found", path.display())
            }
        }
    }
}

impl std::error::Error for LintError {}

impl From<ManifestError> for LintError {
    fn from(err: ManifestError) -> Self {
        LintError::Manifest(err)
    }
}

/// Lints the workspace rooted at `root`: loads the manifest, walks every
/// first-party member's `src/` tree, and runs all rules.
///
/// Vendored shims (`vendor/…`) are skipped — they are frozen third-party
/// stand-ins, not code under the serving contracts. Integration-test and
/// fixture trees are skipped by construction (only `src/` is walked).
///
/// # Errors
///
/// Returns [`LintError`] on IO failure or a malformed manifest; findings
/// are never an `Err`.
pub fn run_lint(root: &Path) -> Result<Report, LintError> {
    let manifest_path = root.join(MANIFEST_FILE);
    let manifest_text = read(&manifest_path)?;
    let manifest = Manifest::parse(&manifest_text)?;

    let cargo_path = root.join("Cargo.toml");
    let cargo_text = read(&cargo_path)?;
    let members = parse_members(&cargo_text).ok_or(LintError::NoMembers(cargo_path))?;

    let mut files: Vec<ScannedFile> = Vec::new();
    for member in &members {
        if member.starts_with("vendor/") {
            continue;
        }
        let src = root.join(member).join("src");
        if !src.is_dir() {
            continue;
        }
        let mut paths = Vec::new();
        collect_rs(&src, &mut paths)?;
        paths.sort();
        for path in paths {
            let rel = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .to_string_lossy()
                .replace('\\', "/");
            let source = read(&path)?;
            files.push(scan::scan(&rel, &source));
        }
    }
    Ok(rules::check(&files, &manifest))
}

fn read(path: &Path) -> Result<String, LintError> {
    fs::read_to_string(path).map_err(|e| LintError::Io(path.to_path_buf(), e.to_string()))
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), LintError> {
    let entries = fs::read_dir(dir).map_err(|e| LintError::Io(dir.to_path_buf(), e.to_string()))?;
    for entry in entries {
        let entry = entry.map_err(|e| LintError::Io(dir.to_path_buf(), e.to_string()))?;
        let path = entry.path();
        if path.is_dir() {
            collect_rs(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Extracts the `members` array from the workspace `Cargo.toml` — a
/// line-oriented parse, matching how the file is actually formatted.
fn parse_members(cargo_toml: &str) -> Option<Vec<String>> {
    let mut members = Vec::new();
    let mut in_members = false;
    for line in cargo_toml.lines() {
        let trimmed = line.trim();
        if !in_members {
            if trimmed.starts_with("members") && trimmed.contains('[') {
                in_members = true;
                if trimmed.contains(']') {
                    // Single-line form: members = ["a", "b"]
                    collect_quoted(trimmed, &mut members);
                    return Some(members);
                }
            }
            continue;
        }
        if trimmed.starts_with(']') {
            return Some(members);
        }
        collect_quoted(trimmed, &mut members);
    }
    None
}

fn collect_quoted(line: &str, out: &mut Vec<String>) {
    let mut rest = line;
    while let Some(start) = rest.find('"') {
        let Some(len) = rest[start + 1..].find('"') else {
            return;
        };
        out.push(rest[start + 1..start + 1 + len].to_string());
        rest = &rest[start + 1 + len + 1..];
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn members_parse_multi_line() {
        let toml = "[workspace]\nmembers = [\n    \"crates/a\",\n    \"vendor/b\",\n]\n";
        assert_eq!(
            parse_members(toml).unwrap(),
            vec!["crates/a".to_string(), "vendor/b".to_string()]
        );
    }

    #[test]
    fn members_parse_single_line() {
        let toml = "members = [\"a\", \"b\"]\n";
        assert_eq!(parse_members(toml).unwrap(), vec!["a", "b"]);
    }

    #[test]
    fn missing_members_is_none() {
        assert!(parse_members("[package]\nname = \"x\"\n").is_none());
    }
}
