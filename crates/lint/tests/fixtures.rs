//! Integration tests: fi-lint against the pinned fixture workspaces and
//! against the committed workspace itself.
//!
//! The fixture trees under `tests/fixtures/` are miniature workspaces
//! (root `Cargo.toml` + `LOCK_ORDER` + member crates). `dirty` trips
//! every rule at least once; `clean` contains the same code shapes with
//! every contract satisfied. The final test is the self-check the CI
//! gate depends on: the committed tree must lint clean, with no stale
//! suppressions (stale markers and stale allow entries are findings, so
//! `is_clean()` covers both).

#![forbid(unsafe_code)]

use std::path::{Path, PathBuf};

use fi_lint::report::Report;
use fi_lint::run_lint;

fn fixture(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

fn rule_count(report: &Report, rule: &str) -> usize {
    report.findings.iter().filter(|f| f.rule == rule).count()
}

#[test]
fn dirty_fixture_reports_every_rule() {
    let report = run_lint(&fixture("dirty")).expect("dirty fixture lints");

    assert_eq!(report.findings.len(), 12, "report:\n{}", report.to_text());
    assert_eq!(rule_count(&report, "hygiene"), 1);
    assert_eq!(rule_count(&report, "panic"), 2);
    assert_eq!(rule_count(&report, "poison"), 1);
    assert_eq!(rule_count(&report, "lock-order"), 1);
    assert_eq!(rule_count(&report, "determinism"), 4);
    assert_eq!(rule_count(&report, "relaxed"), 1);
    // Both flavours of staleness: an unused `// lint:` marker and an
    // `[allow]` manifest entry whose needle matches nothing.
    assert_eq!(rule_count(&report, "stale-allow"), 2);
    assert!(report
        .findings
        .iter()
        .any(|f| f.rule == "stale-allow" && f.file == "LOCK_ORDER"));

    // The vendored member is outside the lint's jurisdiction: its
    // blatant violations must not surface, and it is not even scanned.
    assert_eq!(report.files_scanned, 3);
    assert!(report
        .findings
        .iter()
        .all(|f| !f.file.starts_with("vendor/")));
    assert_eq!(report.suppressions_used, 0);
}

#[test]
fn dirty_fixture_findings_anchor_to_exact_lines() {
    let report = run_lint(&fixture("dirty")).expect("dirty fixture lints");
    let has = |file: &str, line: usize, rule: &str| {
        report
            .findings
            .iter()
            .any(|f| f.file == file && f.line == line && f.rule == rule)
    };
    assert!(has("crates/app/src/lib.rs", 11, "poison"));
    assert!(has("crates/app/src/lib.rs", 16, "lock-order"));
    assert!(has("crates/app/src/lib.rs", 17, "relaxed"));
    assert!(has("crates/app/src/lib.rs", 20, "stale-allow"));
    assert!(has("crates/app/src/serve.rs", 4, "panic"));
    assert!(has("crates/app/src/serve.rs", 8, "panic"));
    assert!(has("crates/app/src/hash.rs", 7, "determinism"));
}

#[test]
fn dirty_fixture_report_is_sorted_and_json_stable() {
    let report = run_lint(&fixture("dirty")).expect("dirty fixture lints");
    let keys: Vec<(&str, usize, &str)> = report
        .findings
        .iter()
        .map(|f| (f.file.as_str(), f.line, f.rule.as_str()))
        .collect();
    let mut sorted = keys.clone();
    sorted.sort();
    assert_eq!(keys, sorted, "findings must be sorted for a stable report");

    let json = report.to_json();
    assert!(json.starts_with("{\n  \"version\": 1,"));
    assert!(json.contains("\"files_scanned\": 3"));
    // Byte-stable across runs: same tree, same report.
    let again = run_lint(&fixture("dirty")).expect("dirty fixture lints");
    assert_eq!(json, again.to_json());
}

#[test]
fn clean_fixture_is_clean_and_uses_its_suppressions() {
    let report = run_lint(&fixture("clean")).expect("clean fixture lints");
    assert!(
        report.is_clean(),
        "unexpected findings:\n{}",
        report.to_text()
    );
    assert_eq!(report.files_scanned, 3);
    // Two `// lint: allow(panic)` markers, one `// relaxed:` comment,
    // and one manifest `[allow]` entry — all live, none stale.
    assert_eq!(report.suppressions_used, 4);
}

#[test]
fn committed_workspace_is_clean() {
    // The self-check the CI gate enforces: the tree this test ran from
    // must carry zero findings and zero stale suppressions. If this
    // fails, either fix the flagged code or add an audited marker /
    // `[allow]` entry with a reason.
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root resolves");
    let report = run_lint(&root).expect("workspace lints");
    assert!(
        report.is_clean(),
        "committed workspace has lint findings:\n{}",
        report.to_text()
    );
    assert!(
        report.files_scanned > 100,
        "walked {}",
        report.files_scanned
    );
}
