//! Clean fixture serving module: panic sources carry audited markers.

pub fn first(xs: &[u32]) -> u32 {
    // lint: allow(panic) callers guarantee a non-empty slice
    xs.first().copied().unwrap()
}

pub fn third(xs: &[u32]) -> u32 {
    // lint: allow(panic) callers pass at least three elements
    xs[2]
}
