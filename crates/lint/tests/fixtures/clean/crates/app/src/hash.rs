//! Clean fixture determinism module: ordered containers only.

use std::collections::BTreeMap;

pub fn digest(items: &BTreeMap<String, u64>) -> u64 {
    items.values().sum()
}
