//! Clean fixture crate root: every contract satisfied.

#![forbid(unsafe_code)]

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, PoisonError};

static COUNT: AtomicU64 = AtomicU64::new(0);

pub fn recovered(state: &Mutex<u32>) -> u32 {
    *state.lock().unwrap_or_else(PoisonError::into_inner)
}

pub fn allowlisted(state: &Mutex<u32>) -> u32 {
    *state.lock().expect("fails fast by design")
}

pub fn right_order(outer: &Mutex<u32>, inner: &Mutex<u32>) {
    let _o = outer.lock().unwrap_or_else(PoisonError::into_inner);
    let _i = inner.lock().unwrap_or_else(PoisonError::into_inner);
    // relaxed: monotonic stat counter, no dependent reads.
    COUNT.fetch_add(1, Ordering::Relaxed);
}
