//! Vendored shim: deliberately full of violations that must NOT be
//! reported — `vendor/` members are outside the lint's jurisdiction.

use std::sync::Mutex;

pub fn ignored(state: &Mutex<u32>) -> u32 {
    *state.lock().unwrap()
}
