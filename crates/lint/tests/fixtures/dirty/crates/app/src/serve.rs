//! Dirty fixture serving module: unmarked panic sources.

pub fn first(xs: &[u32]) -> u32 {
    xs.first().copied().unwrap()
}

pub fn third(xs: &[u32]) -> u32 {
    xs[2]
}
