//! Dirty fixture determinism module: unordered containers and wall clocks.

use std::collections::HashMap;
use std::time::Instant;

pub fn digest(items: &HashMap<String, u64>) -> u64 {
    let start = Instant::now();
    let sum: u64 = items.values().sum();
    sum.wrapping_add(start.elapsed().as_nanos() as u64)
}
