//! Dirty fixture crate root: missing `#![forbid(unsafe_code)]` (hygiene),
//! plus one violation per workspace-wide rule.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, PoisonError};

static COUNT: AtomicU64 = AtomicU64::new(0);

pub fn unrecovered(state: &Mutex<u32>) -> u32 {
    // poison: `.lock()` without PoisonError::into_inner recovery.
    *state.lock().expect("poisoned")
}

pub fn wrong_order(outer: &Mutex<u32>, inner: &Mutex<u32>) {
    let _i = inner.lock().unwrap_or_else(PoisonError::into_inner);
    let _o = outer.lock().unwrap_or_else(PoisonError::into_inner);
    COUNT.fetch_add(1, Ordering::Relaxed);
}

// lint: allow(panic) stale marker — the next statement never panics
pub fn harmless() -> u32 {
    7
}
