//! The PBFT message vocabulary.

use fi_types::hash::hash_fields;
use fi_types::Digest;
use serde::{Deserialize, Serialize};

/// A client operation: opaque payload identified by `(client_seed, seq)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Operation {
    /// Which client issued the operation.
    pub client: u64,
    /// The client's request counter.
    pub counter: u64,
    /// Opaque payload (echoed as the execution result).
    pub payload: u64,
}

impl Operation {
    /// The request digest identifying this operation.
    #[must_use]
    pub fn digest(&self) -> Digest {
        hash_fields(&[
            b"fi-bft-op-v1",
            &self.client.to_be_bytes(),
            &self.counter.to_be_bytes(),
            &self.payload.to_be_bytes(),
        ])
    }
}

/// A prepared certificate carried in view-change messages: evidence that a
/// request reached the prepared state at `(view, seq)`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PreparedCert {
    /// The view in which it prepared.
    pub view: u64,
    /// The sequence number.
    pub seq: u64,
    /// The request digest.
    pub digest: Digest,
    /// The operation (carried so the new primary can re-issue it).
    pub op: Operation,
}

/// All messages exchanged by replicas and clients.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum BftMessage {
    /// Client → replicas: please execute `op`.
    Request {
        /// The operation.
        op: Operation,
    },
    /// Primary → replicas: ordering proposal.
    PrePrepare {
        /// Proposal view.
        view: u64,
        /// Assigned sequence number.
        seq: u64,
        /// Digest of `op`.
        digest: Digest,
        /// The operation itself (piggybacked; classic PBFT ships it
        /// separately).
        op: Operation,
    },
    /// Replica → replicas: I accept this proposal.
    Prepare {
        /// Proposal view.
        view: u64,
        /// Sequence number.
        seq: u64,
        /// Request digest.
        digest: Digest,
    },
    /// Replica → replicas: I have a prepared certificate.
    Commit {
        /// Proposal view.
        view: u64,
        /// Sequence number.
        seq: u64,
        /// Request digest.
        digest: Digest,
    },
    /// Replica → client: execution result.
    Reply {
        /// View at execution time.
        view: u64,
        /// The executed operation.
        op: Operation,
        /// Execution result (payload echo in this state machine).
        result: u64,
    },
    /// Replica → replicas: state digest at a checkpoint sequence.
    Checkpoint {
        /// The checkpointed sequence number.
        seq: u64,
        /// Digest of the execution history up to `seq`.
        state: Digest,
    },
    /// Replica → replicas: move to `new_view`.
    ViewChange {
        /// The proposed view.
        new_view: u64,
        /// Last stable checkpoint sequence.
        last_stable: u64,
        /// Prepared certificates above the stable checkpoint.
        prepared: Vec<PreparedCert>,
    },
    /// New primary → replicas: view `view` starts; re-issued proposals.
    NewView {
        /// The new view.
        view: u64,
        /// How many view-change messages backed this (must be ≥ 2f + 1).
        support: usize,
        /// Re-issued proposals for prepared sequences.
        preprepares: Vec<PreparedCert>,
    },
}

impl BftMessage {
    /// A short tag for tracing and per-type counting.
    #[must_use]
    pub fn tag(&self) -> &'static str {
        match self {
            BftMessage::Request { .. } => "request",
            BftMessage::PrePrepare { .. } => "pre-prepare",
            BftMessage::Prepare { .. } => "prepare",
            BftMessage::Commit { .. } => "commit",
            BftMessage::Reply { .. } => "reply",
            BftMessage::Checkpoint { .. } => "checkpoint",
            BftMessage::ViewChange { .. } => "view-change",
            BftMessage::NewView { .. } => "new-view",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn operation_digest_distinguishes_fields() {
        let base = Operation {
            client: 1,
            counter: 2,
            payload: 3,
        };
        let d = base.digest();
        assert_ne!(d, Operation { client: 9, ..base }.digest());
        assert_ne!(d, Operation { counter: 9, ..base }.digest());
        assert_ne!(d, Operation { payload: 9, ..base }.digest());
        assert_eq!(d, base.digest());
    }

    #[test]
    fn tags_cover_all_variants() {
        let op = Operation {
            client: 0,
            counter: 0,
            payload: 0,
        };
        let d = op.digest();
        let msgs = [
            BftMessage::Request { op },
            BftMessage::PrePrepare {
                view: 0,
                seq: 1,
                digest: d,
                op,
            },
            BftMessage::Prepare {
                view: 0,
                seq: 1,
                digest: d,
            },
            BftMessage::Commit {
                view: 0,
                seq: 1,
                digest: d,
            },
            BftMessage::Reply {
                view: 0,
                op,
                result: 0,
            },
            BftMessage::Checkpoint { seq: 0, state: d },
            BftMessage::ViewChange {
                new_view: 1,
                last_stable: 0,
                prepared: vec![],
            },
            BftMessage::NewView {
                view: 1,
                support: 3,
                preprepares: vec![],
            },
        ];
        let tags: Vec<&str> = msgs.iter().map(BftMessage::tag).collect();
        let mut unique = tags.clone();
        unique.sort_unstable();
        unique.dedup();
        assert_eq!(unique.len(), tags.len());
    }
}
