//! Quorum arithmetic for `n = 3f + 1` BFT systems.
//!
//! The paper (§I): "The resilience of BFT protocols, i.e., the number of
//! tolerated Byzantine replicas (denoted f), is derived from the total
//! number of replicas according to the quorum theory."

use serde::{Deserialize, Serialize};

/// Quorum sizes for a cluster of `n` replicas.
///
/// # Example
///
/// ```
/// use fi_bft::QuorumParams;
/// let q = QuorumParams::for_n(7).unwrap();
/// assert_eq!(q.f(), 2);
/// assert_eq!(q.quorum(), 5);      // 2f + 1
/// assert_eq!(q.weak_quorum(), 3); // f + 1
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct QuorumParams {
    n: usize,
    f: usize,
}

impl QuorumParams {
    /// Derives quorum parameters for `n` replicas: `f = ⌊(n − 1) / 3⌋`.
    /// Returns `None` for `n < 4` (no Byzantine fault tolerance possible
    /// below four replicas).
    #[must_use]
    pub fn for_n(n: usize) -> Option<Self> {
        if n < 4 {
            return None;
        }
        Some(QuorumParams { n, f: (n - 1) / 3 })
    }

    /// Parameters for a chosen `f`: the minimal `n = 3f + 1`.
    ///
    /// Returns `None` for `f == 0`.
    #[must_use]
    pub fn for_f(f: usize) -> Option<Self> {
        if f == 0 {
            return None;
        }
        Some(QuorumParams { n: 3 * f + 1, f })
    }

    /// Total replicas.
    #[must_use]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Tolerated Byzantine replicas.
    #[must_use]
    pub fn f(&self) -> usize {
        self.f
    }

    /// The commit/prepare quorum `n − f` (equal to `2f + 1` at the minimal
    /// `n = 3f + 1`; for larger `n` this is the size that keeps any two
    /// quorums intersecting in at least `f + 1` replicas).
    #[must_use]
    pub fn quorum(&self) -> usize {
        self.n - self.f
    }

    /// The weak (reply/view-change-proof) quorum `f + 1`: at least one
    /// honest replica among any such set.
    #[must_use]
    pub fn weak_quorum(&self) -> usize {
        self.f + 1
    }

    /// Number of prepares a replica needs *besides* its pre-prepare:
    /// `quorum − 1` from distinct replicas.
    #[must_use]
    pub fn prepare_threshold(&self) -> usize {
        self.quorum() - 1
    }

    /// The primary of view `v`.
    #[must_use]
    pub fn primary_of(&self, view: u64) -> usize {
        (view % self.n as u64) as usize
    }

    /// Quorum-intersection safety margin: any two quorums intersect in at
    /// least `2·quorum − n = f + 1` replicas, i.e. at least one honest one.
    #[must_use]
    pub fn quorum_intersection(&self) -> usize {
        2 * self.quorum() - self.n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classic_sizes() {
        let q = QuorumParams::for_n(4).unwrap();
        assert_eq!((q.n(), q.f(), q.quorum(), q.weak_quorum()), (4, 1, 3, 2));
        let q = QuorumParams::for_n(10).unwrap();
        assert_eq!((q.f(), q.quorum()), (3, 7));
    }

    #[test]
    fn too_small_clusters_rejected() {
        for n in 0..4 {
            assert!(QuorumParams::for_n(n).is_none());
        }
        assert!(QuorumParams::for_f(0).is_none());
    }

    #[test]
    fn for_f_gives_minimal_n() {
        for f in 1..20 {
            let q = QuorumParams::for_f(f).unwrap();
            assert_eq!(q.n(), 3 * f + 1);
            assert_eq!(q.f(), f);
            // And deriving back from n is consistent.
            assert_eq!(QuorumParams::for_n(q.n()).unwrap().f(), f);
        }
    }

    #[test]
    fn quorum_intersection_contains_honest_replica() {
        for n in 4..40 {
            let q = QuorumParams::for_n(n).unwrap();
            assert!(
                q.quorum_intersection() > q.f(),
                "n = {n}: intersection {} too small",
                q.quorum_intersection()
            );
        }
    }

    #[test]
    fn primary_rotates_through_all_replicas() {
        let q = QuorumParams::for_n(4).unwrap();
        let primaries: Vec<usize> = (0..8).map(|v| q.primary_of(v)).collect();
        assert_eq!(primaries, vec![0, 1, 2, 3, 0, 1, 2, 3]);
    }

    #[test]
    fn prepare_threshold_is_2f() {
        let q = QuorumParams::for_n(7).unwrap();
        assert_eq!(q.prepare_threshold(), 4);
    }
}
