//! Byzantine behaviours a compromised replica can adopt.
//!
//! The paper's adversary (§II-B) "arbitrarily delay\[s\], drop\[s\], re-order\[s\],
//! insert\[s\], or modif\[ies\] messages" once a replica is compromised through
//! an exploitable vulnerability. These behaviours are the concrete attack
//! repertoires used in the fault-injection experiments; the `flavor` byte of
//! [`fi_simnet::FaultEvent::Compromise`] selects one.

use serde::{Deserialize, Serialize};

/// How a replica behaves.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum Behavior {
    /// Protocol-faithful.
    #[default]
    Honest,
    /// Stopped entirely (crash fault; Remark 1's hybrid model).
    Crashed,
    /// Receives but never sends — a compromised replica lying low.
    Silent,
    /// As primary, proposes conflicting orderings to different halves of
    /// the cluster; as backup, votes for corrupted digests. The classic
    /// safety attack.
    Equivocate,
    /// Participates in pre-prepare/prepare but never commits — a liveness
    /// attack that stays under the radar.
    WithholdCommit,
}

impl Behavior {
    /// Encodes the behaviour into the simulator's compromise flavor byte.
    #[must_use]
    pub fn to_flavor(self) -> u8 {
        match self {
            Behavior::Honest => 0,
            Behavior::Crashed => 1,
            Behavior::Silent => 2,
            Behavior::Equivocate => 3,
            Behavior::WithholdCommit => 4,
        }
    }

    /// Decodes a compromise flavor byte (unknown flavors degrade to
    /// [`Behavior::Silent`], the conservative default).
    #[must_use]
    pub fn from_flavor(flavor: u8) -> Self {
        match flavor {
            0 => Behavior::Honest,
            1 => Behavior::Crashed,
            3 => Behavior::Equivocate,
            4 => Behavior::WithholdCommit,
            _ => Behavior::Silent,
        }
    }

    /// Whether the replica still emits protocol messages.
    #[must_use]
    pub fn sends_messages(self) -> bool {
        !matches!(self, Behavior::Crashed | Behavior::Silent)
    }

    /// Whether the replica is counted as faulty by the experiment
    /// bookkeeping.
    #[must_use]
    pub fn is_faulty(self) -> bool {
        self != Behavior::Honest
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flavor_round_trip() {
        for b in [
            Behavior::Honest,
            Behavior::Crashed,
            Behavior::Silent,
            Behavior::Equivocate,
            Behavior::WithholdCommit,
        ] {
            assert_eq!(Behavior::from_flavor(b.to_flavor()), b);
        }
    }

    #[test]
    fn unknown_flavor_degrades_to_silent() {
        assert_eq!(Behavior::from_flavor(99), Behavior::Silent);
    }

    #[test]
    fn classification() {
        assert!(Behavior::Honest.sends_messages());
        assert!(!Behavior::Honest.is_faulty());
        assert!(!Behavior::Crashed.sends_messages());
        assert!(!Behavior::Silent.sends_messages());
        assert!(Behavior::Equivocate.sends_messages());
        assert!(Behavior::WithholdCommit.is_faulty());
        assert_eq!(Behavior::default(), Behavior::Honest);
    }
}
