//! Voting-power-weighted quorums.
//!
//! The paper abstracts resilience over *voting power* `n_t` rather than
//! replica counts (§II-A): for committee-based permissionless protocols,
//! each committee member carries its stake/power, and quorums are power
//! sums, not head counts. This module provides the weighted counterpart of
//! [`crate::QuorumParams`]: tolerated compromised power
//! `f = ⌊(total − 1)/3⌋` units, quorum power `total − f`, and a vote
//! accumulator that de-duplicates voters.
//!
//! The simulated PBFT replicas in this crate use equal weights (count
//! quorums); the weighted arithmetic is used by analyses that bridge
//! committee selection (`fi-committee`) into resilience statements, and is
//! exercised end-to-end in the integration suites.

use std::collections::HashMap;

use fi_types::{ReplicaId, VotingPower};
use serde::{Deserialize, Serialize};

/// Quorum arithmetic over voting power.
///
/// # Example
///
/// ```
/// use fi_bft::weighted::WeightedQuorum;
/// use fi_types::VotingPower;
///
/// let q = WeightedQuorum::for_total(VotingPower::new(100)).unwrap();
/// assert_eq!(q.f_power(), VotingPower::new(33));
/// assert_eq!(q.quorum_power(), VotingPower::new(67));
/// assert!(q.tolerates(VotingPower::new(33)));
/// assert!(!q.tolerates(VotingPower::new(34)));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct WeightedQuorum {
    total: VotingPower,
    f_power: VotingPower,
}

impl WeightedQuorum {
    /// Derives weighted quorum parameters for a system with `total` voting
    /// power: `f = ⌊(total − 1)/3⌋` power units tolerated. Returns `None`
    /// when `total` is too small to tolerate any compromised unit
    /// (`total < 4`).
    #[must_use]
    pub fn for_total(total: VotingPower) -> Option<Self> {
        if total.as_units() < 4 {
            return None;
        }
        Some(WeightedQuorum {
            total,
            f_power: VotingPower::new((total.as_units() - 1) / 3),
        })
    }

    /// Total voting power `n_t`.
    #[must_use]
    pub fn total(&self) -> VotingPower {
        self.total
    }

    /// Maximum compromised power the system tolerates.
    #[must_use]
    pub fn f_power(&self) -> VotingPower {
        self.f_power
    }

    /// The quorum threshold: `total − f` power units. Any two sets reaching
    /// it intersect in at least `total − 2f ≥ f + 1` units — more power
    /// than the adversary can hold, so at least one honest unit is common.
    #[must_use]
    pub fn quorum_power(&self) -> VotingPower {
        self.total - self.f_power
    }

    /// Whether `accumulated` voting power reaches the quorum.
    #[must_use]
    pub fn reaches_quorum(&self, accumulated: VotingPower) -> bool {
        accumulated >= self.quorum_power()
    }

    /// Whether the paper's safety condition holds for `compromised` power:
    /// `f ≥ Σ_i f^i_t` expressed in units.
    #[must_use]
    pub fn tolerates(&self, compromised: VotingPower) -> bool {
        compromised <= self.f_power
    }

    /// The guaranteed power overlap of any two quorums.
    #[must_use]
    pub fn quorum_intersection_power(&self) -> VotingPower {
        // 2(total − f) − total = total − 2f.
        self.total - self.f_power - self.f_power
    }
}

/// Accumulates votes weighted by per-replica power, counting each replica
/// at most once.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct WeightedVoteSet {
    quorum: WeightedQuorum,
    weights: HashMap<ReplicaId, VotingPower>,
    voted: HashMap<ReplicaId, VotingPower>,
    accumulated: VotingPower,
}

impl WeightedVoteSet {
    /// Creates a vote set over the given member weights.
    ///
    /// Returns `None` if the members' total power is below the weighted
    /// quorum minimum (see [`WeightedQuorum::for_total`]).
    #[must_use]
    pub fn new(weights: HashMap<ReplicaId, VotingPower>) -> Option<Self> {
        let total: VotingPower = weights.values().copied().sum();
        let quorum = WeightedQuorum::for_total(total)?;
        Some(WeightedVoteSet {
            quorum,
            weights,
            voted: HashMap::new(),
            accumulated: VotingPower::ZERO,
        })
    }

    /// The quorum parameters in force.
    #[must_use]
    pub fn quorum(&self) -> WeightedQuorum {
        self.quorum
    }

    /// Records a vote; returns `true` if it was fresh (first vote by this
    /// replica) and the voter is a member. Non-members and duplicates are
    /// ignored.
    pub fn vote(&mut self, replica: ReplicaId) -> bool {
        let Some(&weight) = self.weights.get(&replica) else {
            return false;
        };
        if self.voted.contains_key(&replica) {
            return false;
        }
        self.voted.insert(replica, weight);
        self.accumulated += weight;
        true
    }

    /// Power accumulated so far.
    #[must_use]
    pub fn accumulated(&self) -> VotingPower {
        self.accumulated
    }

    /// Whether the accumulated power reaches the quorum.
    #[must_use]
    pub fn complete(&self) -> bool {
        self.quorum.reaches_quorum(self.accumulated)
    }

    /// Number of distinct voters.
    #[must_use]
    pub fn voters(&self) -> usize {
        self.voted.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thresholds_match_count_case_on_equal_weights() {
        // 4 members of 1 unit each behaves like n = 4, f = 1.
        let q = WeightedQuorum::for_total(VotingPower::new(4)).unwrap();
        assert_eq!(q.f_power(), VotingPower::new(1));
        assert_eq!(q.quorum_power(), VotingPower::new(3));
    }

    #[test]
    fn too_small_totals_rejected() {
        for total in 0..4 {
            assert!(WeightedQuorum::for_total(VotingPower::new(total)).is_none());
        }
    }

    #[test]
    fn intersection_always_beats_adversary() {
        for total in 4u64..2_000 {
            let q = WeightedQuorum::for_total(VotingPower::new(total)).unwrap();
            assert!(
                q.quorum_intersection_power() > q.f_power(),
                "total = {total}"
            );
        }
    }

    #[test]
    fn vote_set_accumulates_and_deduplicates() {
        let weights: HashMap<ReplicaId, VotingPower> = [
            (ReplicaId::new(0), VotingPower::new(50)),
            (ReplicaId::new(1), VotingPower::new(30)),
            (ReplicaId::new(2), VotingPower::new(20)),
        ]
        .into_iter()
        .collect();
        let mut votes = WeightedVoteSet::new(weights).unwrap();
        assert_eq!(votes.quorum().quorum_power(), VotingPower::new(67));
        assert!(votes.vote(ReplicaId::new(0)));
        assert!(!votes.vote(ReplicaId::new(0)), "duplicate ignored");
        assert!(!votes.vote(ReplicaId::new(9)), "non-member ignored");
        assert!(!votes.complete());
        assert!(votes.vote(ReplicaId::new(1)));
        assert!(votes.complete(), "50 + 30 >= 67");
        assert_eq!(votes.voters(), 2);
        assert_eq!(votes.accumulated(), VotingPower::new(80));
    }

    #[test]
    fn whale_cannot_form_quorum_alone_below_threshold() {
        // A 60%-whale still needs help: quorum is 67.
        let weights: HashMap<ReplicaId, VotingPower> = [
            (ReplicaId::new(0), VotingPower::new(60)),
            (ReplicaId::new(1), VotingPower::new(25)),
            (ReplicaId::new(2), VotingPower::new(15)),
        ]
        .into_iter()
        .collect();
        let mut votes = WeightedVoteSet::new(weights).unwrap();
        votes.vote(ReplicaId::new(0));
        assert!(!votes.complete());
        votes.vote(ReplicaId::new(2));
        assert!(votes.complete());
    }

    #[test]
    fn tolerates_is_the_paper_condition() {
        let q = WeightedQuorum::for_total(VotingPower::new(1_000)).unwrap();
        assert!(q.tolerates(VotingPower::new(333)));
        assert!(!q.tolerates(VotingPower::new(334)));
        assert_eq!(q.total(), VotingPower::new(1_000));
    }

    #[test]
    fn empty_or_tiny_vote_sets_rejected() {
        assert!(WeightedVoteSet::new(HashMap::new()).is_none());
        let tiny: HashMap<ReplicaId, VotingPower> = [(ReplicaId::new(0), VotingPower::new(2))]
            .into_iter()
            .collect();
        assert!(WeightedVoteSet::new(tiny).is_none());
    }
}
