//! The PBFT replica state machine.

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};

use fi_simnet::{Context, FaultEvent, NodeId, TimerToken};
use fi_types::hash::hash_fields;
use fi_types::{Digest, SimTime};

use crate::byzantine::Behavior;
use crate::message::{BftMessage, Operation, PreparedCert};
use crate::quorum::QuorumParams;

/// The periodic housekeeping timer (pending-request timeout checks).
pub(crate) const TICK: TimerToken = TimerToken::new(1);

/// A PBFT replica.
///
/// Replicas occupy node ids `0..n` in the simulation; clients follow. All
/// protocol state is public-read via accessors so harnesses can audit
/// execution histories after a run.
#[derive(Debug)]
pub struct Replica {
    index: usize,
    params: QuorumParams,
    behavior: Behavior,
    view: u64,
    next_seq: u64,
    last_executed: u64,
    last_stable: u64,
    checkpoint_interval: u64,
    view_change_timeout: SimTime,
    tick_interval: SimTime,

    /// Accepted proposals: `(view, seq) → (digest, op)`.
    proposals: HashMap<(u64, u64), (Digest, Operation)>,
    /// Prepare votes: `(view, seq, digest) → senders`.
    prepares: HashMap<(u64, u64, Digest), BTreeSet<usize>>,
    /// Commit votes: `(view, seq, digest) → senders`.
    commits: HashMap<(u64, u64, Digest), BTreeSet<usize>>,
    /// Highest-view prepared certificate per sequence.
    prepared: BTreeMap<u64, PreparedCert>,
    /// Committed-but-possibly-unexecuted requests per sequence.
    committed: BTreeMap<u64, (Digest, Operation)>,
    /// Sequences already sent a commit for (per view), to send once.
    commit_sent: HashSet<(u64, u64)>,
    /// Execution history `(seq, op)` in order.
    executed: Vec<(u64, Operation)>,
    executed_digests: HashSet<Digest>,
    state_digest: Digest,
    /// Digests this primary has already assigned sequences to.
    assigned: HashSet<Digest>,
    /// Requests seen but not yet executed: `digest → (op, first_seen)`.
    pending: HashMap<Digest, (Operation, SimTime)>,
    /// Checkpoint votes: `(seq, state) → senders`.
    checkpoints: HashMap<(u64, Digest), BTreeSet<usize>>,
    /// View-change messages per proposed view: `view → sender → certs`.
    view_changes: HashMap<u64, BTreeMap<usize, Vec<PreparedCert>>>,
    /// The highest view this replica has voted to enter.
    highest_vc_sent: u64,
    /// Votes an equivocating replica has already echoed (dedup):
    /// `(phase, view, seq, digest)` with phase 0 = prepare, 1 = commit.
    echoed: HashSet<(u8, u64, u64, Digest)>,
}

impl Replica {
    /// Creates a replica with the given cluster parameters.
    #[must_use]
    pub fn new(
        index: usize,
        params: QuorumParams,
        checkpoint_interval: u64,
        view_change_timeout: SimTime,
    ) -> Self {
        Replica {
            index,
            params,
            behavior: Behavior::Honest,
            view: 0,
            next_seq: 0,
            last_executed: 0,
            last_stable: 0,
            checkpoint_interval: checkpoint_interval.max(1),
            view_change_timeout,
            tick_interval: SimTime::from_micros((view_change_timeout.as_micros() / 2).max(1)),
            proposals: HashMap::new(),
            prepares: HashMap::new(),
            commits: HashMap::new(),
            prepared: BTreeMap::new(),
            committed: BTreeMap::new(),
            commit_sent: HashSet::new(),
            executed: Vec::new(),
            executed_digests: HashSet::new(),
            state_digest: Digest::ZERO,
            assigned: HashSet::new(),
            pending: HashMap::new(),
            checkpoints: HashMap::new(),
            view_changes: HashMap::new(),
            highest_vc_sent: 0,
            echoed: HashSet::new(),
        }
    }

    /// This replica's index.
    #[must_use]
    pub fn index(&self) -> usize {
        self.index
    }

    /// Current view.
    #[must_use]
    pub fn view(&self) -> u64 {
        self.view
    }

    /// Current behaviour.
    #[must_use]
    pub fn behavior(&self) -> Behavior {
        self.behavior
    }

    /// Forces a behaviour (test/experiment hook; fault injection normally
    /// arrives through the simulator).
    pub fn set_behavior(&mut self, behavior: Behavior) {
        self.behavior = behavior;
    }

    /// The execution history `(seq, op)` in execution order.
    #[must_use]
    pub fn executed(&self) -> &[(u64, Operation)] {
        &self.executed
    }

    /// Highest contiguously executed sequence number.
    #[must_use]
    pub fn last_executed(&self) -> u64 {
        self.last_executed
    }

    /// Last stable checkpoint.
    #[must_use]
    pub fn last_stable(&self) -> u64 {
        self.last_stable
    }

    /// The rolling digest of the execution history.
    #[must_use]
    pub fn state_digest(&self) -> Digest {
        self.state_digest
    }

    fn is_primary(&self) -> bool {
        self.params.primary_of(self.view) == self.index
    }

    fn n(&self) -> usize {
        self.params.n()
    }

    /// Sends to all *replicas* (not clients), plus processes own vote
    /// locally where the protocol counts it.
    fn broadcast_replicas(&self, ctx: &mut Context<'_, BftMessage>, msg: &BftMessage) {
        for i in 0..self.n() {
            if i != self.index {
                ctx.send(NodeId::new(i), msg.clone());
            }
        }
    }

    // ------------------------------------------------------------------
    // Request handling / proposal
    // ------------------------------------------------------------------

    fn handle_request(&mut self, op: Operation, ctx: &mut Context<'_, BftMessage>) {
        let digest = op.digest();
        if self.executed_digests.contains(&digest) {
            // Already executed: re-reply so a retransmitting client
            // converges.
            if self.behavior.sends_messages() {
                ctx.send(
                    NodeId::new(op.client as usize),
                    BftMessage::Reply {
                        view: self.view,
                        op,
                        result: op.payload,
                    },
                );
            }
            return;
        }
        self.pending.entry(digest).or_insert((op, ctx.now()));
        if self.is_primary() && self.behavior.sends_messages() {
            self.propose_pending(ctx);
        }
    }

    /// As primary: assign sequences to every pending, unassigned request.
    fn propose_pending(&mut self, ctx: &mut Context<'_, BftMessage>) {
        let mut to_propose: Vec<Operation> = self
            .pending
            .iter()
            .filter(|(d, _)| !self.assigned.contains(*d))
            .map(|(_, (op, _))| *op)
            .collect();
        // Deterministic proposal order.
        to_propose.sort_by_key(|op| (op.client, op.counter));
        for op in to_propose {
            let digest = op.digest();
            self.next_seq += 1;
            let seq = self.next_seq;
            self.assigned.insert(digest);
            if self.behavior == Behavior::Equivocate {
                self.equivocate_proposal(seq, op, ctx);
                continue;
            }
            self.proposals.insert((self.view, seq), (digest, op));
            // The primary's pre-prepare counts as its prepare vote.
            self.prepares
                .entry((self.view, seq, digest))
                .or_default()
                .insert(self.index);
            self.broadcast_replicas(
                ctx,
                &BftMessage::PrePrepare {
                    view: self.view,
                    seq,
                    digest,
                    op,
                },
            );
        }
    }

    /// An equivocating primary proposes two conflicting operations for the
    /// same sequence, one to each half of the cluster.
    fn equivocate_proposal(&mut self, seq: u64, op: Operation, ctx: &mut Context<'_, BftMessage>) {
        let evil_op = Operation {
            payload: op.payload.wrapping_add(0xDEAD_BEEF),
            ..op
        };
        let good = BftMessage::PrePrepare {
            view: self.view,
            seq,
            digest: op.digest(),
            op,
        };
        let evil = BftMessage::PrePrepare {
            view: self.view,
            seq,
            digest: evil_op.digest(),
            op: evil_op,
        };
        for i in 0..self.n() {
            if i == self.index {
                continue;
            }
            let msg = if i % 2 == 0 {
                good.clone()
            } else {
                evil.clone()
            };
            ctx.send(NodeId::new(i), msg);
        }
    }

    // ------------------------------------------------------------------
    // Three-phase agreement
    // ------------------------------------------------------------------

    fn handle_preprepare(
        &mut self,
        from: usize,
        view: u64,
        seq: u64,
        digest: Digest,
        op: Operation,
        ctx: &mut Context<'_, BftMessage>,
    ) {
        if view != self.view || from != self.params.primary_of(view) {
            return;
        }
        if seq <= self.last_stable {
            return;
        }
        if op.digest() != digest {
            return; // malformed proposal
        }
        // Accept at most one digest per (view, seq).
        if let Some((existing, _)) = self.proposals.get(&(view, seq)) {
            if *existing != digest {
                return; // primary equivocated; keep the first
            }
        } else {
            self.proposals.insert((view, seq), (digest, op));
        }
        self.pending.entry(digest).or_insert((op, ctx.now()));
        // Record the primary's implicit prepare and our own.
        self.prepares
            .entry((view, seq, digest))
            .or_default()
            .insert(from);
        if !self.behavior.sends_messages() {
            return;
        }
        let vote_digest = if self.behavior == Behavior::Equivocate {
            corrupt_digest(&digest)
        } else {
            digest
        };
        self.prepares
            .entry((view, seq, vote_digest))
            .or_default()
            .insert(self.index);
        self.broadcast_replicas(
            ctx,
            &BftMessage::Prepare {
                view,
                seq,
                digest: vote_digest,
            },
        );
        self.try_prepare_certificate(view, seq, digest, ctx);
    }

    fn handle_prepare(
        &mut self,
        from: usize,
        view: u64,
        seq: u64,
        digest: Digest,
        ctx: &mut Context<'_, BftMessage>,
    ) {
        if view != self.view || seq <= self.last_stable {
            return;
        }
        self.prepares
            .entry((view, seq, digest))
            .or_default()
            .insert(from);
        // A double-voting equivocator lends its support to *every* digest
        // it hears about — the collusion that makes an equivocating
        // primary's fork succeed once the faulty set exceeds f.
        if self.behavior == Behavior::Equivocate && self.echoed.insert((0, view, seq, digest)) {
            self.prepares
                .entry((view, seq, digest))
                .or_default()
                .insert(self.index);
            self.broadcast_replicas(ctx, &BftMessage::Prepare { view, seq, digest });
            self.commits
                .entry((view, seq, digest))
                .or_default()
                .insert(self.index);
            self.broadcast_replicas(ctx, &BftMessage::Commit { view, seq, digest });
        }
        self.try_prepare_certificate(view, seq, digest, ctx);
    }

    /// If the prepare quorum is reached for the digest we accepted a
    /// proposal for, form the certificate and commit.
    fn try_prepare_certificate(
        &mut self,
        view: u64,
        seq: u64,
        digest: Digest,
        ctx: &mut Context<'_, BftMessage>,
    ) {
        let Some(&(accepted, op)) = self.proposals.get(&(view, seq)) else {
            return;
        };
        if accepted != digest {
            return;
        }
        let votes = self
            .prepares
            .get(&(view, seq, digest))
            .map_or(0, BTreeSet::len);
        if votes < self.params.quorum() {
            return;
        }
        self.prepared
            .entry(seq)
            .and_modify(|cert| {
                if view >= cert.view {
                    *cert = PreparedCert {
                        view,
                        seq,
                        digest,
                        op,
                    };
                }
            })
            .or_insert(PreparedCert {
                view,
                seq,
                digest,
                op,
            });
        if !self.commit_sent.insert((view, seq)) {
            return;
        }
        // Our own commit vote.
        self.commits
            .entry((view, seq, digest))
            .or_default()
            .insert(self.index);
        if self.behavior.sends_messages() && self.behavior != Behavior::WithholdCommit {
            self.broadcast_replicas(ctx, &BftMessage::Commit { view, seq, digest });
        }
        self.try_commit(view, seq, digest, ctx);
    }

    fn handle_commit(
        &mut self,
        from: usize,
        view: u64,
        seq: u64,
        digest: Digest,
        ctx: &mut Context<'_, BftMessage>,
    ) {
        if seq <= self.last_stable {
            return;
        }
        self.commits
            .entry((view, seq, digest))
            .or_default()
            .insert(from);
        if self.behavior == Behavior::Equivocate && self.echoed.insert((1, view, seq, digest)) {
            self.commits
                .entry((view, seq, digest))
                .or_default()
                .insert(self.index);
            self.broadcast_replicas(ctx, &BftMessage::Commit { view, seq, digest });
        }
        self.try_commit(view, seq, digest, ctx);
    }

    fn try_commit(
        &mut self,
        view: u64,
        seq: u64,
        digest: Digest,
        ctx: &mut Context<'_, BftMessage>,
    ) {
        if self.committed.contains_key(&seq) {
            return;
        }
        let votes = self
            .commits
            .get(&(view, seq, digest))
            .map_or(0, BTreeSet::len);
        if votes < self.params.quorum() {
            return;
        }
        let Some(&(accepted, op)) = self.proposals.get(&(view, seq)) else {
            return;
        };
        if accepted != digest {
            return;
        }
        self.committed.insert(seq, (digest, op));
        self.execute_ready(ctx);
    }

    fn execute_ready(&mut self, ctx: &mut Context<'_, BftMessage>) {
        while let Some(&(digest, op)) = self.committed.get(&(self.last_executed + 1)) {
            self.last_executed += 1;
            let seq = self.last_executed;
            self.executed.push((seq, op));
            self.executed_digests.insert(digest);
            self.pending.remove(&digest);
            self.state_digest = hash_fields(&[
                b"fi-bft-state-v1",
                self.state_digest.as_bytes(),
                digest.as_bytes(),
            ]);
            if self.behavior.sends_messages() {
                ctx.send(
                    NodeId::new(op.client as usize),
                    BftMessage::Reply {
                        view: self.view,
                        op,
                        result: op.payload,
                    },
                );
            }
            if seq.is_multiple_of(self.checkpoint_interval) {
                let state = self.state_digest;
                self.checkpoints
                    .entry((seq, state))
                    .or_default()
                    .insert(self.index);
                if self.behavior.sends_messages() {
                    self.broadcast_replicas(ctx, &BftMessage::Checkpoint { seq, state });
                }
                self.try_stabilize(seq, state);
            }
        }
    }

    // ------------------------------------------------------------------
    // Checkpoints
    // ------------------------------------------------------------------

    fn handle_checkpoint(&mut self, from: usize, seq: u64, state: Digest) {
        self.checkpoints
            .entry((seq, state))
            .or_default()
            .insert(from);
        self.try_stabilize(seq, state);
    }

    fn try_stabilize(&mut self, seq: u64, state: Digest) {
        let votes = self.checkpoints.get(&(seq, state)).map_or(0, BTreeSet::len);
        if votes < self.params.quorum() || seq <= self.last_stable {
            return;
        }
        self.last_stable = seq;
        // Garbage-collect the log below the stable checkpoint.
        self.proposals.retain(|&(_, s), _| s > seq);
        self.prepares.retain(|&(_, s, _), _| s > seq);
        self.commits.retain(|&(_, s, _), _| s > seq);
        self.committed.retain(|&s, _| s > seq);
        self.prepared.retain(|&s, _| s > seq);
        self.commit_sent.retain(|&(_, s)| s > seq);
        self.checkpoints.retain(|&(s, _), _| s >= seq);
    }

    // ------------------------------------------------------------------
    // View change
    // ------------------------------------------------------------------

    fn tick(&mut self, ctx: &mut Context<'_, BftMessage>) {
        if self.behavior.sends_messages() {
            // A stalled pending request triggers a view change vote.
            let now = ctx.now();
            let overdue = self
                .pending
                .values()
                .any(|&(_, first_seen)| now.saturating_sub(first_seen) > self.view_change_timeout);
            if overdue {
                // Escalate one view per timeout: if the view change we
                // already voted for has not completed (e.g. the next
                // primary is also faulty), move to the view after it.
                let next = if self.highest_vc_sent <= self.view {
                    self.view + 1
                } else {
                    self.highest_vc_sent + 1
                };
                self.start_view_change(next, ctx);
            }
            // A primary that inherited pending requests proposes them.
            if self.is_primary() {
                self.propose_pending(ctx);
            }
        }
        ctx.set_timer(self.tick_interval, TICK);
    }

    fn start_view_change(&mut self, new_view: u64, ctx: &mut Context<'_, BftMessage>) {
        self.highest_vc_sent = new_view;
        let prepared: Vec<PreparedCert> = self
            .prepared
            .values()
            .filter(|c| c.seq > self.last_stable)
            .cloned()
            .collect();
        // Record our own vote.
        self.view_changes
            .entry(new_view)
            .or_default()
            .insert(self.index, prepared.clone());
        let msg = BftMessage::ViewChange {
            new_view,
            last_stable: self.last_stable,
            prepared,
        };
        self.broadcast_replicas(ctx, &msg);
        self.maybe_lead_new_view(new_view, ctx);
        // Reset pending clocks so we do not spam view changes every tick.
        let now = ctx.now();
        for entry in self.pending.values_mut() {
            entry.1 = now;
        }
    }

    fn handle_view_change(
        &mut self,
        from: usize,
        new_view: u64,
        prepared: Vec<PreparedCert>,
        ctx: &mut Context<'_, BftMessage>,
    ) {
        if new_view <= self.view {
            return;
        }
        self.view_changes
            .entry(new_view)
            .or_default()
            .insert(from, prepared);
        // Join a view change that already has weak-quorum support (the
        // standard liveness amplification rule).
        let support = self.view_changes[&new_view].len();
        if support >= self.params.weak_quorum()
            && self.highest_vc_sent < new_view
            && self.behavior.sends_messages()
        {
            self.start_view_change(new_view, ctx);
        }
        self.maybe_lead_new_view(new_view, ctx);
    }

    fn maybe_lead_new_view(&mut self, new_view: u64, ctx: &mut Context<'_, BftMessage>) {
        if self.params.primary_of(new_view) != self.index
            || new_view <= self.view
            || !self.behavior.sends_messages()
        {
            return;
        }
        let Some(votes) = self.view_changes.get(&new_view) else {
            return;
        };
        if votes.len() < self.params.quorum() {
            return;
        }
        // Merge prepared certificates: highest view wins per sequence.
        let mut merged: BTreeMap<u64, PreparedCert> = BTreeMap::new();
        for certs in votes.values() {
            for cert in certs {
                merged
                    .entry(cert.seq)
                    .and_modify(|existing| {
                        if cert.view > existing.view {
                            *existing = cert.clone();
                        }
                    })
                    .or_insert_with(|| cert.clone());
            }
        }
        let support = votes.len();
        let preprepares: Vec<PreparedCert> = merged.into_values().collect();
        self.enter_view(new_view);
        // Adopt the re-issued proposals locally (with the new view).
        for cert in &preprepares {
            self.adopt_reissued(new_view, cert);
            self.next_seq = self.next_seq.max(cert.seq);
        }
        self.broadcast_replicas(
            ctx,
            &BftMessage::NewView {
                view: new_view,
                support,
                preprepares: preprepares.clone(),
            },
        );
        // Send our prepare votes for the re-issued proposals.
        for cert in &preprepares {
            self.broadcast_replicas(
                ctx,
                &BftMessage::Prepare {
                    view: new_view,
                    seq: cert.seq,
                    digest: cert.digest,
                },
            );
            self.try_prepare_certificate(new_view, cert.seq, cert.digest, ctx);
        }
        // Propose anything still pending and unassigned under the new view.
        self.propose_pending(ctx);
    }

    fn handle_new_view(
        &mut self,
        from: usize,
        view: u64,
        support: usize,
        preprepares: Vec<PreparedCert>,
        ctx: &mut Context<'_, BftMessage>,
    ) {
        if view <= self.view
            || from != self.params.primary_of(view)
            || support < self.params.quorum()
        {
            return;
        }
        self.enter_view(view);
        for cert in &preprepares {
            self.adopt_reissued(view, cert);
            if self.behavior.sends_messages() {
                self.prepares
                    .entry((view, cert.seq, cert.digest))
                    .or_default()
                    .insert(self.index);
                self.broadcast_replicas(
                    ctx,
                    &BftMessage::Prepare {
                        view,
                        seq: cert.seq,
                        digest: cert.digest,
                    },
                );
                self.try_prepare_certificate(view, cert.seq, cert.digest, ctx);
            }
        }
    }

    fn enter_view(&mut self, view: u64) {
        self.view = view;
        self.assigned.clear();
        // Requests already executed must not be re-proposed.
        for (_, op) in self.executed.iter() {
            self.assigned.insert(op.digest());
        }
    }

    fn adopt_reissued(&mut self, view: u64, cert: &PreparedCert) {
        if cert.seq <= self.last_stable || self.executed_digests.contains(&cert.digest) {
            return;
        }
        self.proposals
            .entry((view, cert.seq))
            .or_insert((cert.digest, cert.op));
        self.assigned.insert(cert.digest);
        // The new-view message carries quorum evidence; the primary's
        // implicit prepare:
        self.prepares
            .entry((view, cert.seq, cert.digest))
            .or_default()
            .insert(self.params.primary_of(view));
    }

    // ------------------------------------------------------------------
    // Simulator plumbing
    // ------------------------------------------------------------------

    /// Entry point for simulator events (called by the harness node
    /// wrapper).
    pub fn on_message(&mut self, from: NodeId, msg: BftMessage, ctx: &mut Context<'_, BftMessage>) {
        if self.behavior == Behavior::Crashed {
            return;
        }
        let from_index = from.index();
        let from_replica = from_index < self.n();
        match msg {
            BftMessage::Request { op } => self.handle_request(op, ctx),
            BftMessage::PrePrepare {
                view,
                seq,
                digest,
                op,
            } if from_replica => self.handle_preprepare(from_index, view, seq, digest, op, ctx),
            BftMessage::Prepare { view, seq, digest } if from_replica => {
                self.handle_prepare(from_index, view, seq, digest, ctx)
            }
            BftMessage::Commit { view, seq, digest } if from_replica => {
                self.handle_commit(from_index, view, seq, digest, ctx)
            }
            BftMessage::Checkpoint { seq, state } if from_replica => {
                self.handle_checkpoint(from_index, seq, state)
            }
            BftMessage::ViewChange {
                new_view, prepared, ..
            } if from_replica => self.handle_view_change(from_index, new_view, prepared, ctx),
            BftMessage::NewView {
                view,
                support,
                preprepares,
            } if from_replica => self.handle_new_view(from_index, view, support, preprepares, ctx),
            _ => {}
        }
    }

    /// Timer entry point.
    pub fn on_timer(&mut self, token: TimerToken, ctx: &mut Context<'_, BftMessage>) {
        if self.behavior == Behavior::Crashed {
            return;
        }
        if token == TICK {
            self.tick(ctx);
        }
    }

    /// Start hook: arms the housekeeping timer.
    pub fn on_start(&mut self, ctx: &mut Context<'_, BftMessage>) {
        ctx.set_timer(self.tick_interval, TICK);
    }

    /// Fault-injection hook.
    pub fn on_fault(&mut self, fault: FaultEvent) {
        match fault {
            FaultEvent::Crash => self.behavior = Behavior::Crashed,
            FaultEvent::Compromise { flavor } => {
                self.behavior = Behavior::from_flavor(flavor);
            }
            FaultEvent::Recover => self.behavior = Behavior::Honest,
        }
    }
}

fn corrupt_digest(d: &Digest) -> Digest {
    hash_fields(&[b"fi-bft-equivocation", d.as_bytes()])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn replica_construction_defaults() {
        let r = Replica::new(
            2,
            QuorumParams::for_n(4).unwrap(),
            16,
            SimTime::from_millis(500),
        );
        assert_eq!(r.index(), 2);
        assert_eq!(r.view(), 0);
        assert_eq!(r.behavior(), Behavior::Honest);
        assert_eq!(r.last_executed(), 0);
        assert_eq!(r.last_stable(), 0);
        assert!(r.executed().is_empty());
        assert_eq!(r.state_digest(), Digest::ZERO);
    }

    #[test]
    fn fault_hooks_flip_behavior() {
        let mut r = Replica::new(
            0,
            QuorumParams::for_n(4).unwrap(),
            16,
            SimTime::from_millis(500),
        );
        r.on_fault(FaultEvent::Compromise {
            flavor: Behavior::Equivocate.to_flavor(),
        });
        assert_eq!(r.behavior(), Behavior::Equivocate);
        r.on_fault(FaultEvent::Crash);
        assert_eq!(r.behavior(), Behavior::Crashed);
        r.on_fault(FaultEvent::Recover);
        assert_eq!(r.behavior(), Behavior::Honest);
    }

    #[test]
    fn corrupt_digest_differs() {
        let d = fi_types::sha256(b"x");
        assert_ne!(corrupt_digest(&d), d);
        assert_eq!(corrupt_digest(&d), corrupt_digest(&d));
    }

    // Full protocol behaviour is exercised end-to-end in harness.rs tests
    // and in the integration suite.
}
