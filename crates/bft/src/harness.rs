//! Cluster harness: build, run, audit.
//!
//! This is where the paper's experiment loop lives: construct a cluster,
//! optionally schedule correlated compromises derived from a vulnerability
//! database and a configuration assignment, run the workload, and audit
//! safety (`f ≥ Σ f^i_t` violated ⇒ possible fork) and liveness.

use fi_config::{correlated_fault_set, Assignment, Vulnerability};
use fi_simnet::{Context, FaultEvent, NetworkConfig, Node, NodeId, Simulation, TimerToken};
use fi_types::SimTime;
use serde::{Deserialize, Serialize};

use crate::byzantine::Behavior;
use crate::client::Client;
use crate::message::BftMessage;
use crate::quorum::QuorumParams;
use crate::replica::Replica;
use crate::safety::{LivenessReport, SafetyReport};

/// A node in a BFT simulation: replica or client.
#[derive(Debug)]
pub enum BftNode {
    /// A protocol replica (node ids `0..n`).
    Replica(Box<Replica>),
    /// A workload client (node ids `n..n+c`).
    Client(Client),
}

impl Node for BftNode {
    type Message = BftMessage;

    fn on_start(&mut self, ctx: &mut Context<'_, BftMessage>) {
        match self {
            BftNode::Replica(r) => r.on_start(ctx),
            BftNode::Client(c) => c.on_start(ctx),
        }
    }

    fn on_message(&mut self, from: NodeId, msg: BftMessage, ctx: &mut Context<'_, BftMessage>) {
        match self {
            BftNode::Replica(r) => r.on_message(from, msg, ctx),
            BftNode::Client(c) => c.on_message(from, msg, ctx),
        }
    }

    fn on_timer(&mut self, token: TimerToken, ctx: &mut Context<'_, BftMessage>) {
        match self {
            BftNode::Replica(r) => r.on_timer(token, ctx),
            BftNode::Client(c) => c.on_timer(token, ctx),
        }
    }

    fn on_fault(&mut self, fault: FaultEvent, _ctx: &mut Context<'_, BftMessage>) {
        if let BftNode::Replica(r) = self {
            r.on_fault(fault);
        }
    }
}

/// A scheduled compromise: at `at`, replica `replica` adopts `behavior`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScheduledFault {
    /// Injection time.
    pub at: SimTime,
    /// Replica index.
    pub replica: usize,
    /// Behaviour adopted.
    pub behavior: Behavior,
}

/// Cluster and workload parameters (builder-style).
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterConfig {
    n: usize,
    clients: usize,
    requests_per_client: u64,
    checkpoint_interval: u64,
    view_change_timeout: SimTime,
    client_retry: SimTime,
    network: NetworkConfig,
    max_time: SimTime,
}

impl ClusterConfig {
    /// A cluster of `n` replicas (must be ≥ 4) with one client issuing ten
    /// requests over a default LAN.
    ///
    /// # Panics
    ///
    /// Panics if `n < 4` (no BFT quorum exists).
    #[must_use]
    pub fn new(n: usize) -> Self {
        assert!(n >= 4, "BFT requires at least 4 replicas");
        ClusterConfig {
            n,
            clients: 1,
            requests_per_client: 10,
            checkpoint_interval: 8,
            view_change_timeout: SimTime::from_millis(400),
            client_retry: SimTime::from_millis(300),
            network: NetworkConfig::default(),
            max_time: SimTime::from_secs(60),
        }
    }

    /// Sets the client count.
    #[must_use]
    pub fn clients(mut self, clients: usize) -> Self {
        self.clients = clients.max(1);
        self
    }

    /// Sets requests per client.
    #[must_use]
    pub fn requests(mut self, requests: u64) -> Self {
        self.requests_per_client = requests;
        self
    }

    /// Sets the checkpoint interval.
    #[must_use]
    pub fn checkpoint_interval(mut self, interval: u64) -> Self {
        self.checkpoint_interval = interval.max(1);
        self
    }

    /// Sets the view-change timeout.
    #[must_use]
    pub fn view_change_timeout(mut self, timeout: SimTime) -> Self {
        self.view_change_timeout = timeout;
        self
    }

    /// Sets the network.
    #[must_use]
    pub fn network(mut self, network: NetworkConfig) -> Self {
        self.network = network;
        self
    }

    /// Sets the simulation horizon.
    #[must_use]
    pub fn max_time(mut self, max_time: SimTime) -> Self {
        self.max_time = max_time;
        self
    }

    /// Number of replicas.
    #[must_use]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Derived quorum parameters.
    ///
    /// # Panics
    ///
    /// Never panics: `n ≥ 4` is enforced at construction.
    #[must_use]
    pub fn quorum_params(&self) -> QuorumParams {
        QuorumParams::for_n(self.n).expect("n >= 4 enforced by constructor")
    }

    /// Total requests the workload will issue.
    #[must_use]
    pub fn total_requests(&self) -> u64 {
        self.clients as u64 * self.requests_per_client
    }
}

/// Everything a run produces.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClusterReport {
    /// Safety audit over honest replicas.
    pub safety: SafetyReport,
    /// Liveness audit over clients.
    pub liveness: LivenessReport,
    /// Total messages handed to the network.
    pub messages_sent: u64,
    /// Messages delivered.
    pub messages_delivered: u64,
    /// Highest view reached by any honest replica (> 0 means view changes
    /// happened).
    pub max_view: u64,
    /// Simulated time consumed.
    pub sim_time: SimTime,
}

/// Builds and runs a fault-free cluster.
#[must_use]
pub fn run_cluster(config: &ClusterConfig, seed: u64) -> ClusterReport {
    run_cluster_with_faults(config, seed, &[])
}

/// Builds and runs a cluster with scheduled compromises.
#[must_use]
pub fn run_cluster_with_faults(
    config: &ClusterConfig,
    seed: u64,
    faults: &[ScheduledFault],
) -> ClusterReport {
    run_cluster_with_schedule(config, seed, faults, &[])
}

/// Builds and runs a cluster with scheduled compromises *and* scheduled
/// recoveries: each `(at, replica)` pair in `recoveries` restores the
/// replica to honest behaviour at `at` — the proactive-recovery /
/// patch-rollout mitigation of §III-A (refs \[23\]–\[27\]), expressed as a
/// first-class schedule so scenario campaigns can model patch windows.
///
/// # Panics
///
/// Panics if a fault or recovery targets a replica index `>= n`.
#[must_use]
pub fn run_cluster_with_schedule(
    config: &ClusterConfig,
    seed: u64,
    faults: &[ScheduledFault],
    recoveries: &[(SimTime, usize)],
) -> ClusterReport {
    let params = config.quorum_params();
    let mut sim: Simulation<BftNode> = Simulation::new(config.network.clone(), seed);
    for i in 0..config.n {
        sim.add_node(BftNode::Replica(Box::new(Replica::new(
            i,
            params,
            config.checkpoint_interval,
            config.view_change_timeout,
        ))));
    }
    for c in 0..config.clients {
        sim.add_node(BftNode::Client(Client::new(
            config.n + c,
            params,
            config.requests_per_client,
            config.client_retry,
        )));
    }
    for fault in faults {
        assert!(
            fault.replica < config.n,
            "fault targets replica {} but n = {}",
            fault.replica,
            config.n
        );
        sim.schedule_fault(
            fault.at,
            NodeId::new(fault.replica),
            FaultEvent::Compromise {
                flavor: fault.behavior.to_flavor(),
            },
        );
    }
    for &(at, replica) in recoveries {
        assert!(
            replica < config.n,
            "recovery targets replica {} but n = {}",
            replica,
            config.n
        );
        sim.schedule_fault(at, NodeId::new(replica), FaultEvent::Recover);
    }

    // Run in slices so we can stop as soon as the workload completes.
    let slice = SimTime::from_millis(200);
    let mut now = SimTime::ZERO;
    while now < config.max_time {
        now = now.saturating_add(slice).min(config.max_time);
        sim.run_until(now);
        let all_done = (config.n..config.n + config.clients)
            .all(|i| matches!(sim.node(NodeId::new(i)), BftNode::Client(c) if c.done()));
        if all_done {
            break;
        }
    }

    audit(&sim, config)
}

fn audit(sim: &Simulation<BftNode>, config: &ClusterConfig) -> ClusterReport {
    let replicas: Vec<&Replica> = (0..config.n)
        .map(|i| match sim.node(NodeId::new(i)) {
            BftNode::Replica(r) => r.as_ref(),
            BftNode::Client(_) => unreachable!("replica ids precede client ids"),
        })
        .collect();
    let honest: Vec<bool> = replicas
        .iter()
        .map(|r| r.behavior() == Behavior::Honest)
        .collect();
    let safety = SafetyReport::audit(&replicas, &honest);
    let max_view = replicas
        .iter()
        .zip(&honest)
        .filter(|(_, &h)| h)
        .map(|(r, _)| r.view())
        .max()
        .unwrap_or(0);

    let mut executed = 0;
    let mut retries = 0;
    for c in 0..config.clients {
        if let BftNode::Client(client) = sim.node(NodeId::new(config.n + c)) {
            executed += client.completed().len() as u64;
            retries += client.retries();
        }
    }

    ClusterReport {
        safety,
        liveness: LivenessReport {
            executed_requests: executed,
            expected_requests: config.total_requests(),
            client_retries: retries,
        },
        messages_sent: sim.stats().sent(),
        messages_delivered: sim.stats().delivered(),
        max_view,
        sim_time: sim.now(),
    }
}

/// Derives the fault schedule for one vulnerability: every replica whose
/// configuration contains the vulnerable component is compromised at
/// `vuln.disclosed_at()` with `behavior` — the paper's correlated-fault
/// event. Replica ids in the assignment map 1:1 onto simulation node ids.
#[must_use]
pub fn faults_from_vulnerability(
    assignment: &Assignment,
    vuln: &Vulnerability,
    behavior: Behavior,
) -> Vec<ScheduledFault> {
    let at = vuln.disclosed_at();
    correlated_fault_set(assignment, vuln, at)
        .replicas()
        .iter()
        .map(|r| ScheduledFault {
            at,
            replica: r.as_usize(),
            behavior,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use fi_config::prelude::{catalog, ComponentSelector, Severity, VulnerabilityDb};
    use fi_config::ConfigurationSpace;
    use fi_types::{VotingPower, VulnId};

    #[test]
    fn fault_free_cluster_is_safe_and_live() {
        let report = run_cluster(&ClusterConfig::new(4).requests(10), 1);
        assert!(report.safety.holds());
        assert!(report.liveness.all_executed(), "liveness: {report:?}");
        assert_eq!(report.max_view, 0, "no view change expected");
        assert!(report.messages_sent > 0);
    }

    #[test]
    fn larger_cluster_works() {
        let report = run_cluster(&ClusterConfig::new(7).requests(6).clients(2), 2);
        assert!(report.safety.holds());
        assert!(report.liveness.all_executed(), "liveness: {report:?}");
    }

    #[test]
    fn run_is_deterministic() {
        let config = ClusterConfig::new(4).requests(5);
        let a = run_cluster(&config, 7);
        let b = run_cluster(&config, 7);
        assert_eq!(a, b);
    }

    #[test]
    fn f_crashes_are_tolerated() {
        let config = ClusterConfig::new(4).requests(8);
        let faults = vec![ScheduledFault {
            at: SimTime::from_millis(1),
            replica: 3,
            behavior: Behavior::Crashed,
        }];
        let report = run_cluster_with_faults(&config, 3, &faults);
        assert!(report.safety.holds());
        assert!(report.liveness.all_executed(), "liveness: {report:?}");
    }

    #[test]
    fn primary_crash_triggers_view_change_and_recovers() {
        let config = ClusterConfig::new(4)
            .requests(6)
            .max_time(SimTime::from_secs(30));
        let faults = vec![ScheduledFault {
            // Before the first request is delivered (1 ms network latency):
            // view 0 can never make progress.
            at: SimTime::from_micros(100),
            replica: 0, // primary of view 0
            behavior: Behavior::Crashed,
        }];
        let report = run_cluster_with_faults(&config, 4, &faults);
        assert!(report.safety.holds());
        assert!(report.max_view >= 1, "expected a view change: {report:?}");
        assert!(
            report.liveness.all_executed(),
            "requests must complete after view change: {report:?}"
        );
    }

    #[test]
    fn f_equivocators_cannot_break_safety() {
        let config = ClusterConfig::new(4).requests(8);
        let faults = vec![ScheduledFault {
            at: SimTime::ZERO,
            replica: 1,
            behavior: Behavior::Equivocate,
        }];
        let report = run_cluster_with_faults(&config, 5, &faults);
        assert!(report.safety.holds());
        assert!(report.liveness.all_executed(), "liveness: {report:?}");
    }

    #[test]
    fn equivocating_primary_is_replaced() {
        let config = ClusterConfig::new(4)
            .requests(5)
            .max_time(SimTime::from_secs(30));
        let faults = vec![ScheduledFault {
            at: SimTime::ZERO,
            replica: 0,
            behavior: Behavior::Equivocate,
        }];
        let report = run_cluster_with_faults(&config, 6, &faults);
        assert!(report.safety.holds());
        assert!(report.liveness.all_executed(), "liveness: {report:?}");
    }

    #[test]
    fn withhold_commit_by_f_replicas_preserves_liveness() {
        let config = ClusterConfig::new(7).requests(5);
        let faults: Vec<ScheduledFault> = (0..2)
            .map(|i| ScheduledFault {
                at: SimTime::ZERO,
                replica: 2 + i,
                behavior: Behavior::WithholdCommit,
            })
            .collect();
        let report = run_cluster_with_faults(&config, 7, &faults);
        assert!(report.safety.holds());
        assert!(report.liveness.all_executed(), "liveness: {report:?}");
    }

    #[test]
    fn more_than_f_silent_replicas_stall_liveness_but_not_safety() {
        let config = ClusterConfig::new(4)
            .requests(4)
            .max_time(SimTime::from_secs(5));
        let faults: Vec<ScheduledFault> = (0..2)
            .map(|i| ScheduledFault {
                at: SimTime::from_millis(1),
                replica: 1 + i,
                behavior: Behavior::Silent,
            })
            .collect();
        let report = run_cluster_with_faults(&config, 8, &faults);
        // 2 > f = 1 silent replicas: no quorum, nothing commits after the
        // faults land — but nothing forks either.
        assert!(report.safety.holds());
        assert!(!report.liveness.all_executed());
    }

    #[test]
    fn faults_from_vulnerability_maps_fault_sets() {
        let space =
            ConfigurationSpace::cartesian(&[catalog::operating_systems()[..2].to_vec()]).unwrap();
        let assignment =
            fi_config::Assignment::round_robin(&space, 4, VotingPower::new(1)).unwrap();
        let os = &catalog::operating_systems()[0];
        let vuln = Vulnerability::new(
            VulnId::new(0),
            "os-bug",
            ComponentSelector::product(os.kind(), os.name()),
            Severity::Critical,
        )
        .with_window(SimTime::from_millis(10), SimTime::from_secs(100));
        let faults = faults_from_vulnerability(&assignment, &vuln, Behavior::Silent);
        assert_eq!(faults.len(), 2);
        assert!(faults.iter().all(|f| f.at == SimTime::from_millis(10)));
        assert!(faults.iter().all(|f| f.replica % 2 == 0));
        let _ = VulnerabilityDb::new();
    }

    #[test]
    fn more_than_f_equivocators_fork_the_cluster() {
        // The paper's core scenario (§II-C): one vulnerability compromises
        // two of four replicas (Σ f^i_t = 2 > f = 1). The equivocating
        // primary proposes conflicting orders and the colluding backup
        // double-votes; the two honest replicas commit different
        // operations at the same sequence — a state-machine fork.
        let config = ClusterConfig::new(4)
            .requests(4)
            .max_time(SimTime::from_secs(10));
        let faults = vec![
            ScheduledFault {
                at: SimTime::ZERO,
                replica: 0,
                behavior: Behavior::Equivocate,
            },
            ScheduledFault {
                at: SimTime::ZERO,
                replica: 1,
                behavior: Behavior::Equivocate,
            },
        ];
        let report = run_cluster_with_faults(&config, 11, &faults);
        assert!(
            !report.safety.holds(),
            "expected a fork with 2 > f = 1 colluding equivocators: {report:?}"
        );
    }

    #[test]
    fn proactive_recovery_restores_liveness() {
        // Paper §III-A points at proactive recovery (refs [23]-[27]) as a
        // mitigation: recover compromised replicas during the vulnerability
        // window. 2 > f = 1 replicas go silent at t=1ms (liveness lost);
        // recovering them at t=2s restores progress.
        let config = ClusterConfig::new(4)
            .requests(6)
            .max_time(SimTime::from_secs(30));
        let params = config.quorum_params();
        assert_eq!(params.f(), 1);
        let mut sim: Simulation<BftNode> = Simulation::new(NetworkConfig::default(), 13);
        for i in 0..4 {
            sim.add_node(BftNode::Replica(Box::new(Replica::new(
                i,
                params,
                8,
                SimTime::from_millis(400),
            ))));
        }
        sim.add_node(BftNode::Client(Client::new(
            4,
            params,
            6,
            SimTime::from_millis(300),
        )));
        for r in [1usize, 2] {
            sim.schedule_fault(
                SimTime::from_millis(1),
                NodeId::new(r),
                FaultEvent::Compromise {
                    flavor: Behavior::Silent.to_flavor(),
                },
            );
            sim.schedule_fault(SimTime::from_secs(2), NodeId::new(r), FaultEvent::Recover);
        }
        sim.run_until(SimTime::from_secs(30));
        let client = match sim.node(NodeId::new(4)) {
            BftNode::Client(c) => c,
            BftNode::Replica(_) => unreachable!(
                "node ids 0..4 are replicas; id 4 was added as the workload client above"
            ),
        };
        assert!(
            client.done(),
            "recovery must restore liveness: {} of 6 done",
            client.completed().len()
        );
        // And the recovered cluster is still safe.
        let replicas: Vec<&Replica> = (0..4)
            .map(|i| match sim.node(NodeId::new(i)) {
                BftNode::Replica(r) => r.as_ref(),
                BftNode::Client(_) => unreachable!(),
            })
            .collect();
        let honest = vec![true; 4];
        assert!(SafetyReport::audit(&replicas, &honest).holds());
    }

    #[test]
    fn scheduled_recovery_restores_liveness_via_harness() {
        // Same shape as proactive_recovery_restores_liveness, but through
        // the first-class schedule API: 2 > f = 1 replicas go silent at
        // t=1ms, recover at t=2s, and the workload still completes.
        let config = ClusterConfig::new(4)
            .requests(6)
            .max_time(SimTime::from_secs(30));
        let faults: Vec<ScheduledFault> = [1usize, 2]
            .iter()
            .map(|&r| ScheduledFault {
                at: SimTime::from_millis(1),
                replica: r,
                behavior: Behavior::Silent,
            })
            .collect();
        let recoveries = [
            (SimTime::from_secs(2), 1usize),
            (SimTime::from_secs(2), 2usize),
        ];
        let report = run_cluster_with_schedule(&config, 13, &faults, &recoveries);
        assert!(report.safety.holds());
        assert!(
            report.liveness.all_executed(),
            "recovery must restore liveness: {report:?}"
        );
    }

    #[test]
    #[should_panic(expected = "recovery targets replica")]
    fn recovery_out_of_range_panics() {
        let config = ClusterConfig::new(4);
        let _ = run_cluster_with_schedule(&config, 0, &[], &[(SimTime::ZERO, 9)]);
    }

    #[test]
    #[should_panic(expected = "fault targets replica")]
    fn fault_out_of_range_panics() {
        let config = ClusterConfig::new(4);
        let faults = vec![ScheduledFault {
            at: SimTime::ZERO,
            replica: 9,
            behavior: Behavior::Crashed,
        }];
        let _ = run_cluster_with_faults(&config, 0, &faults);
    }

    #[test]
    #[should_panic(expected = "at least 4")]
    fn tiny_cluster_rejected() {
        let _ = ClusterConfig::new(3);
    }
}
