//! Safety and liveness checking over post-run replica state.
//!
//! Safety here is exactly the paper's concern (§II-C): if the correlated
//! faults exceed `f`, two honest replicas may execute different operations
//! at the same sequence number — a state-machine fork. The checker compares
//! the execution histories of all replicas that remained honest.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use crate::message::Operation;
use crate::replica::Replica;

/// A detected divergence: two honest replicas executed different operations
/// at the same sequence.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SafetyViolation {
    /// The sequence number at which histories diverge.
    pub seq: u64,
    /// First replica index.
    pub replica_a: usize,
    /// Second replica index.
    pub replica_b: usize,
}

/// The outcome of the safety audit.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SafetyReport {
    violations: Vec<SafetyViolation>,
    honest_replicas: usize,
    audited_sequences: u64,
}

impl SafetyReport {
    /// Audits the execution histories of the replicas flagged honest.
    ///
    /// Two honest replicas violate safety iff they executed *different*
    /// operations at the same sequence number. Prefix gaps (one replica
    /// lagging) are not violations.
    #[must_use]
    pub fn audit(replicas: &[&Replica], honest: &[bool]) -> SafetyReport {
        let mut canonical: HashMap<u64, (usize, Operation)> = HashMap::new();
        let mut violations = Vec::new();
        let mut honest_count = 0;
        let mut max_seq = 0;
        for (i, replica) in replicas.iter().enumerate() {
            if !honest.get(i).copied().unwrap_or(false) {
                continue;
            }
            honest_count += 1;
            for &(seq, op) in replica.executed() {
                max_seq = max_seq.max(seq);
                match canonical.get(&seq) {
                    None => {
                        canonical.insert(seq, (replica.index(), op));
                    }
                    Some(&(first_index, first_op)) => {
                        if first_op != op {
                            violations.push(SafetyViolation {
                                seq,
                                replica_a: first_index,
                                replica_b: replica.index(),
                            });
                        }
                    }
                }
            }
        }
        violations.sort_by_key(|v| (v.seq, v.replica_a, v.replica_b));
        SafetyReport {
            violations,
            honest_replicas: honest_count,
            audited_sequences: max_seq,
        }
    }

    /// `true` iff no divergence was found.
    #[must_use]
    pub fn holds(&self) -> bool {
        self.violations.is_empty()
    }

    /// The divergences found.
    #[must_use]
    pub fn violations(&self) -> &[SafetyViolation] {
        &self.violations
    }

    /// How many replicas were audited as honest.
    #[must_use]
    pub fn honest_replicas(&self) -> usize {
        self.honest_replicas
    }

    /// The highest sequence seen among honest replicas.
    #[must_use]
    pub fn audited_sequences(&self) -> u64 {
        self.audited_sequences
    }
}

/// The outcome of the liveness audit (client progress).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LivenessReport {
    /// Requests the clients saw completed (`f + 1` matching replies).
    pub executed_requests: u64,
    /// Requests the workload intended.
    pub expected_requests: u64,
    /// Total client retransmissions (a congestion/health signal).
    pub client_retries: u64,
}

impl LivenessReport {
    /// Whether every intended request completed.
    #[must_use]
    pub fn all_executed(&self) -> bool {
        self.executed_requests == self.expected_requests
    }

    /// Completion ratio in `[0, 1]`.
    #[must_use]
    pub fn completion_ratio(&self) -> f64 {
        if self.expected_requests == 0 {
            1.0
        } else {
            self.executed_requests as f64 / self.expected_requests as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::quorum::QuorumParams;
    use fi_types::SimTime;

    fn replica_with_history(index: usize, history: &[(u64, u64)]) -> Replica {
        // Build a replica and force an execution history through the
        // committed path (test-only shortcut using the public API).
        let mut r = Replica::new(
            index,
            QuorumParams::for_n(4).unwrap(),
            1_000,
            SimTime::from_millis(500),
        );
        // Reach into the history via the public `executed` invariant: we
        // simulate executions by feeding the internal state through the
        // normal message flow in integration tests; here we use the fact
        // that `executed()` is only appended by execution, so we test the
        // auditor against synthetic replicas built from a helper below.
        let _ = history;
        r.set_behavior(crate::Behavior::Honest);
        r
    }

    // The auditor operates on `Replica::executed()`; constructing divergent
    // histories through the full protocol requires > f faults, which the
    // harness tests do end-to-end. Here we check the report mechanics on
    // degenerate inputs.

    #[test]
    fn empty_audit_holds() {
        let r0 = replica_with_history(0, &[]);
        let r1 = replica_with_history(1, &[]);
        let report = SafetyReport::audit(&[&r0, &r1], &[true, true]);
        assert!(report.holds());
        assert_eq!(report.honest_replicas(), 2);
        assert_eq!(report.audited_sequences(), 0);
        assert!(report.violations().is_empty());
    }

    #[test]
    fn dishonest_replicas_are_skipped() {
        let r0 = replica_with_history(0, &[]);
        let report = SafetyReport::audit(&[&r0], &[false]);
        assert_eq!(report.honest_replicas(), 0);
        assert!(report.holds());
    }

    #[test]
    fn honest_flags_shorter_than_replicas_default_to_skip() {
        let r0 = replica_with_history(0, &[]);
        let r1 = replica_with_history(1, &[]);
        let report = SafetyReport::audit(&[&r0, &r1], &[true]);
        assert_eq!(report.honest_replicas(), 1);
    }

    #[test]
    fn liveness_ratios() {
        let full = LivenessReport {
            executed_requests: 10,
            expected_requests: 10,
            client_retries: 0,
        };
        assert!(full.all_executed());
        assert_eq!(full.completion_ratio(), 1.0);
        let partial = LivenessReport {
            executed_requests: 3,
            expected_requests: 10,
            client_retries: 7,
        };
        assert!(!partial.all_executed());
        assert!((partial.completion_ratio() - 0.3).abs() < 1e-12);
        let empty = LivenessReport {
            executed_requests: 0,
            expected_requests: 0,
            client_retries: 0,
        };
        assert_eq!(empty.completion_ratio(), 1.0);
    }
}
