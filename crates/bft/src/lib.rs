//! # `fi-bft` — PBFT-style state machine replication under correlated faults
//!
//! A complete three-phase BFT-SMR implementation (pre-prepare / prepare /
//! commit, checkpoints, view changes) running on the deterministic
//! `fi-simnet` simulator. Its purpose in this workspace is to check the
//! paper's safety condition `f ≥ Σ_i f^i_t` (§II-C) *operationally*: the
//! fault-injection harness compromises exactly the replicas sharing a
//! vulnerable component (via `fi-config`'s correlated-fault closure) and the
//! safety checker then inspects the execution histories of honest replicas
//! for divergence.
//!
//! ## Protocol summary
//!
//! * `n = 3f + 1` replicas; the primary of view `v` is replica `v mod n`.
//! * Clients broadcast requests to all replicas; the primary assigns a
//!   sequence number and broadcasts `PrePrepare`; replicas broadcast
//!   `Prepare`; with a pre-prepare and `2f` matching prepares a request is
//!   *prepared* and the replica broadcasts `Commit`; with `2f + 1` matching
//!   commits it is *committed* and executed in sequence order.
//! * Replicas checkpoint every `checkpoint_interval` sequences; `2f + 1`
//!   matching checkpoints make it stable and truncate the log.
//! * A replica that has seen a request pending longer than the view-change
//!   timeout broadcasts `ViewChange` for the next view, carrying its
//!   prepared certificates; the new primary, on `2f + 1` view-changes,
//!   broadcasts `NewView` re-issuing pre-prepares for every certified
//!   sequence.
//! * Byzantine behaviours ([`byzantine::Behavior`]): crash, going silent,
//!   primary/backup equivocation, and commit-withholding. A compromise
//!   arrives as a simulator fault event at an exact instant — the paper's
//!   "one vulnerability flips every replica running the component".
//!
//! ## Example
//!
//! ```
//! use fi_bft::harness::{ClusterConfig, run_cluster};
//!
//! let report = run_cluster(&ClusterConfig::new(4).requests(5), 42);
//! assert!(report.safety.holds());
//! assert_eq!(report.liveness.executed_requests, 5);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod byzantine;
pub mod client;
pub mod harness;
pub mod message;
pub mod quorum;
pub mod replica;
pub mod safety;
pub mod weighted;

pub use byzantine::Behavior;
pub use harness::{
    faults_from_vulnerability, run_cluster, run_cluster_with_faults, run_cluster_with_schedule,
    ClusterConfig, ClusterReport, ScheduledFault,
};
pub use message::BftMessage;
pub use quorum::QuorumParams;
pub use replica::Replica;
pub use safety::{LivenessReport, SafetyReport};
pub use weighted::{WeightedQuorum, WeightedVoteSet};
