//! BFT clients: issue requests, collect `f + 1` matching replies, retry on
//! timeout.

use std::collections::BTreeSet;
use std::collections::HashMap;

use fi_simnet::{Context, NodeId, TimerToken};
use fi_types::SimTime;

use crate::message::{BftMessage, Operation};
use crate::quorum::QuorumParams;

const RETRY: TimerToken = TimerToken::new(2);

/// One completed request's timing record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CompletedRequest {
    /// The operation.
    pub op: Operation,
    /// When the request was first sent.
    pub sent_at: SimTime,
    /// When `f + 1` matching replies had arrived.
    pub completed_at: SimTime,
}

/// A closed-loop client: one outstanding request at a time.
#[derive(Debug)]
pub struct Client {
    node_index: usize,
    params: QuorumParams,
    total_requests: u64,
    next_counter: u64,
    outstanding: Option<(Operation, SimTime)>,
    reply_votes: HashMap<(u64, u64), BTreeSet<usize>>,
    completed: Vec<CompletedRequest>,
    retry_timeout: SimTime,
    retries: u64,
}

impl Client {
    /// Creates a client that will issue `total_requests` requests.
    #[must_use]
    pub fn new(
        node_index: usize,
        params: QuorumParams,
        total_requests: u64,
        retry_timeout: SimTime,
    ) -> Self {
        Client {
            node_index,
            params,
            total_requests,
            next_counter: 0,
            outstanding: None,
            reply_votes: HashMap::new(),
            completed: Vec::new(),
            retry_timeout,
            retries: 0,
        }
    }

    /// Requests completed so far.
    #[must_use]
    pub fn completed(&self) -> &[CompletedRequest] {
        &self.completed
    }

    /// Whether every request completed.
    #[must_use]
    pub fn done(&self) -> bool {
        self.completed.len() as u64 == self.total_requests
    }

    /// Number of retransmissions performed.
    #[must_use]
    pub fn retries(&self) -> u64 {
        self.retries
    }

    fn next_request(&mut self, ctx: &mut Context<'_, BftMessage>) {
        if self.next_counter >= self.total_requests {
            self.outstanding = None;
            return;
        }
        let op = Operation {
            client: self.node_index as u64,
            counter: self.next_counter,
            payload: self.node_index as u64 * 1_000_003 + self.next_counter,
        };
        self.next_counter += 1;
        self.outstanding = Some((op, ctx.now()));
        self.reply_votes.clear();
        self.send_request(op, ctx);
    }

    fn send_request(&self, op: Operation, ctx: &mut Context<'_, BftMessage>) {
        for i in 0..self.params.n() {
            ctx.send(NodeId::new(i), BftMessage::Request { op });
        }
    }

    /// Start hook: issue the first request and arm the retry timer.
    pub fn on_start(&mut self, ctx: &mut Context<'_, BftMessage>) {
        self.next_request(ctx);
        ctx.set_timer(self.retry_timeout, RETRY);
    }

    /// Reply handling: count matching `(counter, result)` votes from
    /// distinct replicas; `f + 1` completes the request.
    pub fn on_message(&mut self, from: NodeId, msg: BftMessage, ctx: &mut Context<'_, BftMessage>) {
        let BftMessage::Reply { op, result, .. } = msg else {
            return;
        };
        if from.index() >= self.params.n() {
            return; // replies must come from replicas
        }
        let Some((current, sent_at)) = self.outstanding else {
            return;
        };
        if op != current {
            return;
        }
        let votes = self.reply_votes.entry((op.counter, result)).or_default();
        votes.insert(from.index());
        if votes.len() >= self.params.weak_quorum() {
            self.completed.push(CompletedRequest {
                op,
                sent_at,
                completed_at: ctx.now(),
            });
            self.next_request(ctx);
        }
    }

    /// Retry timer: rebroadcast the outstanding request.
    pub fn on_timer(&mut self, token: TimerToken, ctx: &mut Context<'_, BftMessage>) {
        if token != RETRY {
            return;
        }
        if let Some((op, sent_at)) = self.outstanding {
            if ctx.now().saturating_sub(sent_at) >= self.retry_timeout {
                self.retries += 1;
                self.send_request(op, ctx);
            }
        }
        if !self.done() {
            ctx.set_timer(self.retry_timeout, RETRY);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn client_initial_state() {
        let c = Client::new(
            4,
            QuorumParams::for_n(4).unwrap(),
            3,
            SimTime::from_millis(100),
        );
        assert!(!c.done());
        assert!(c.completed().is_empty());
        assert_eq!(c.retries(), 0);
    }

    #[test]
    fn zero_request_client_is_done() {
        let c = Client::new(
            4,
            QuorumParams::for_n(4).unwrap(),
            0,
            SimTime::from_millis(100),
        );
        assert!(c.done());
    }

    // End-to-end request/reply flows are exercised via the harness tests.
}
