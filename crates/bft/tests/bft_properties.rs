//! Property-based tests for the BFT stack: for any cluster size, fault
//! placement within the certified bound, network jitter, and seed, the
//! protocol must stay safe — and live whenever faults are within `f`.

use fi_bft::harness::{run_cluster_with_faults, ClusterConfig, ScheduledFault};
use fi_bft::{Behavior, QuorumParams};
use fi_simnet::{LatencyModel, NetworkConfig};
use fi_types::SimTime;
use proptest::prelude::*;

fn cluster_sizes() -> impl Strategy<Value = usize> {
    prop_oneof![Just(4usize), Just(5), Just(7), Just(10)]
}

fn behaviors() -> impl Strategy<Value = Behavior> {
    prop_oneof![
        Just(Behavior::Crashed),
        Just(Behavior::Silent),
        Just(Behavior::Equivocate),
        Just(Behavior::WithholdCommit),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// With at most f faulty replicas of any behaviour, safety and
    /// liveness both hold, across seeds and fault onset times.
    #[test]
    fn up_to_f_faults_are_harmless(
        n in cluster_sizes(),
        seed in 0u64..1_000,
        behavior in behaviors(),
        onset_ms in 0u64..50,
        placement in 0usize..10,
    ) {
        let params = QuorumParams::for_n(n).unwrap();
        let faults: Vec<ScheduledFault> = (0..params.f())
            .map(|i| ScheduledFault {
                at: SimTime::from_millis(onset_ms),
                replica: (placement + i) % n,
                behavior,
            })
            .collect();
        let config = ClusterConfig::new(n)
            .requests(4)
            .max_time(SimTime::from_secs(25));
        let report = run_cluster_with_faults(&config, seed, &faults);
        prop_assert!(report.safety.holds(), "{report:?}");
        prop_assert!(
            report.liveness.all_executed(),
            "liveness lost with {} {:?} faults on n={n}: {report:?}",
            params.f(),
            behavior
        );
    }

    /// Safety holds under lossy, high-jitter networks with f crash faults
    /// (messages may be dropped; clients retransmit).
    #[test]
    fn safety_under_lossy_network(
        seed in 0u64..500,
        drop_pct in 0u32..20,
    ) {
        let network = NetworkConfig::with_latency(LatencyModel::Exponential {
            floor: SimTime::from_micros(200),
            mean: SimTime::from_millis(5),
        })
        .drop_probability(f64::from(drop_pct) / 100.0);
        let config = ClusterConfig::new(4)
            .requests(3)
            .network(network)
            .max_time(SimTime::from_secs(30));
        let faults = vec![ScheduledFault {
            at: SimTime::from_millis(5),
            replica: 3,
            behavior: Behavior::Crashed,
        }];
        let report = run_cluster_with_faults(&config, seed, &faults);
        prop_assert!(report.safety.holds(), "{report:?}");
    }

    /// Runs are bit-for-bit deterministic in the seed.
    #[test]
    fn determinism(n in cluster_sizes(), seed in 0u64..100) {
        let config = ClusterConfig::new(n).requests(3).max_time(SimTime::from_secs(15));
        let a = run_cluster_with_faults(&config, seed, &[]);
        let b = run_cluster_with_faults(&config, seed, &[]);
        prop_assert_eq!(a, b);
    }

    /// Quorum arithmetic invariants for all n.
    #[test]
    fn quorum_invariants(n in 4usize..200) {
        let q = QuorumParams::for_n(n).unwrap();
        // Tolerance never exceeds a third.
        prop_assert!(3 * q.f() < n);
        // Two quorums always intersect in at least one honest replica.
        prop_assert!(q.quorum_intersection() > q.f());
        // Weak quorum always contains an honest replica.
        prop_assert!(q.weak_quorum() > q.f());
        // Primary rotation covers all replicas.
        let mut seen = vec![false; n];
        for v in 0..n as u64 {
            seen[q.primary_of(v)] = true;
        }
        prop_assert!(seen.iter().all(|&s| s));
    }
}
