//! Blocks.

use fi_types::hash::hash_fields;
use fi_types::{Digest, SimTime};
use serde::{Deserialize, Serialize};

/// A mined block.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Block {
    id: Digest,
    parent: Digest,
    height: u64,
    miner: usize,
    mined_at: SimTime,
}

impl Block {
    /// The genesis block (height 0, mined by nobody).
    #[must_use]
    pub fn genesis() -> Block {
        Block {
            id: hash_fields(&[b"fi-nakamoto-genesis"]),
            parent: Digest::ZERO,
            height: 0,
            miner: usize::MAX,
            mined_at: SimTime::ZERO,
        }
    }

    /// Mines a block on `parent` by `miner` at `mined_at`. `salt`
    /// disambiguates blocks the same miner mines on the same parent at the
    /// same instant (possible in Monte-Carlo races).
    #[must_use]
    pub fn mine(parent: &Block, miner: usize, mined_at: SimTime, salt: u64) -> Block {
        let id = hash_fields(&[
            b"fi-nakamoto-block-v1",
            parent.id.as_bytes(),
            &(miner as u64).to_be_bytes(),
            &mined_at.as_micros().to_be_bytes(),
            &salt.to_be_bytes(),
        ]);
        Block {
            id,
            parent: parent.id,
            height: parent.height + 1,
            miner,
            mined_at,
        }
    }

    /// The block id.
    #[must_use]
    pub fn id(&self) -> Digest {
        self.id
    }

    /// The parent id.
    #[must_use]
    pub fn parent(&self) -> Digest {
        self.parent
    }

    /// Height above genesis.
    #[must_use]
    pub fn height(&self) -> u64 {
        self.height
    }

    /// Index of the miner (or `usize::MAX` for genesis).
    #[must_use]
    pub fn miner(&self) -> usize {
        self.miner
    }

    /// Mining time.
    #[must_use]
    pub fn mined_at(&self) -> SimTime {
        self.mined_at
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn genesis_properties() {
        let g = Block::genesis();
        assert_eq!(g.height(), 0);
        assert_eq!(g.parent(), Digest::ZERO);
        assert_eq!(Block::genesis(), g);
    }

    #[test]
    fn mining_chains_heights() {
        let g = Block::genesis();
        let b1 = Block::mine(&g, 0, SimTime::from_secs(600), 0);
        let b2 = Block::mine(&b1, 1, SimTime::from_secs(1200), 0);
        assert_eq!(b1.height(), 1);
        assert_eq!(b2.height(), 2);
        assert_eq!(b1.parent(), g.id());
        assert_eq!(b2.parent(), b1.id());
        assert_eq!(b2.miner(), 1);
    }

    #[test]
    fn ids_distinguish_miner_time_and_salt() {
        let g = Block::genesis();
        let a = Block::mine(&g, 0, SimTime::from_secs(1), 0);
        let b = Block::mine(&g, 1, SimTime::from_secs(1), 0);
        let c = Block::mine(&g, 0, SimTime::from_secs(2), 0);
        let d = Block::mine(&g, 0, SimTime::from_secs(1), 1);
        let ids = [a.id(), b.id(), c.id(), d.id()];
        for i in 0..ids.len() {
            for j in i + 1..ids.len() {
                assert_ne!(ids[i], ids[j]);
            }
        }
    }
}
