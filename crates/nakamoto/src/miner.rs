//! Miners: hash power plus strategy.

use fi_types::VotingPower;
use serde::{Deserialize, Serialize};

/// What a miner does with the blocks it finds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum MinerStrategy {
    /// Publish immediately on the longest known chain.
    #[default]
    Honest,
    /// Mine on the attacker's private branch (used by double-spend and
    /// majority-attack experiments; compromised pools are switched to this
    /// strategy).
    PrivateBranch,
    /// Powered off (crash fault / pool taken offline by an exploit).
    Offline,
}

/// A miner (or a pool acting as one aggregate miner).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Miner {
    index: usize,
    power: VotingPower,
    strategy: MinerStrategy,
}

impl Miner {
    /// Creates an honest miner.
    #[must_use]
    pub fn new(index: usize, power: VotingPower) -> Self {
        Miner {
            index,
            power,
            strategy: MinerStrategy::Honest,
        }
    }

    /// The miner's index.
    #[must_use]
    pub fn index(&self) -> usize {
        self.index
    }

    /// The miner's hash power.
    #[must_use]
    pub fn power(&self) -> VotingPower {
        self.power
    }

    /// The current strategy.
    #[must_use]
    pub fn strategy(&self) -> MinerStrategy {
        self.strategy
    }

    /// Switches strategy (compromise/recovery).
    pub fn set_strategy(&mut self, strategy: MinerStrategy) {
        self.strategy = strategy;
    }

    /// Effective mining power: zero when offline.
    #[must_use]
    pub fn effective_power(&self) -> VotingPower {
        if self.strategy == MinerStrategy::Offline {
            VotingPower::ZERO
        } else {
            self.power
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_strategy() {
        let mut m = Miner::new(3, VotingPower::new(100));
        assert_eq!(m.index(), 3);
        assert_eq!(m.power(), VotingPower::new(100));
        assert_eq!(m.strategy(), MinerStrategy::Honest);
        assert_eq!(m.effective_power(), VotingPower::new(100));
        m.set_strategy(MinerStrategy::Offline);
        assert_eq!(m.effective_power(), VotingPower::ZERO);
        m.set_strategy(MinerStrategy::PrivateBranch);
        assert_eq!(m.effective_power(), VotingPower::new(100));
    }

    #[test]
    fn default_strategy_is_honest() {
        assert_eq!(MinerStrategy::default(), MinerStrategy::Honest);
    }
}
