//! Attack analyses: double-spend races and the selfish-mining baseline.
//!
//! These parameterise directly on the attacker's hash-power share, so the
//! correlated-compromise experiments can feed
//! [`crate::pool::compromised_share`] straight in: "what happens to
//! double-spend security when one vulnerability takes the top three pools'
//! software?" (experiment E7).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Analytic double-spend success probability (Rosenfeld's exact form of
/// Nakamoto's race): attacker with share `q` against `z` confirmations.
/// Returns 1.0 whenever `q ≥ 0.5` (the attacker eventually wins any race —
/// the paper's majority-compromise catastrophe).
///
/// # Panics
///
/// Panics if `q` is not in `[0, 1]`.
///
/// # Example
///
/// ```
/// use fi_nakamoto::attack::double_spend_success_probability;
/// let p = double_spend_success_probability(0.1, 6);
/// // Nakamoto's whitepaper table: q = 0.1, z = 6 → P ≈ 0.0002.
/// assert!(p > 1e-5 && p < 1e-3);
/// ```
#[must_use]
pub fn double_spend_success_probability(q: f64, z: u32) -> f64 {
    assert!((0.0..=1.0).contains(&q), "attacker share must be in [0,1]");
    if q >= 0.5 {
        return 1.0;
    }
    if q == 0.0 {
        return 0.0;
    }
    let p = 1.0 - q;
    // P = 1 − Σ_{k=0}^{z} C(z+k−1, k) (p^z q^k − q^z p^k)
    let mut sum = 0.0;
    let mut binom = 1.0; // C(z-1, 0) = 1
    for k in 0..=z {
        if k > 0 {
            // C(z+k-1, k) = C(z+k-2, k-1) * (z+k-1) / k
            binom *= (z + k - 1) as f64 / k as f64;
        }
        let term =
            binom * (p.powi(z as i32) * q.powi(k as i32) - q.powi(z as i32) * p.powi(k as i32));
        sum += term;
    }
    (1.0 - sum).clamp(0.0, 1.0)
}

/// Monte-Carlo cross-check of the double-spend race. Returns the empirical
/// success ratio.
///
/// Fast path via geometric run sampling instead of per-block Bernoulli
/// draws: while the merchant waits for `z` honest confirmations, the number
/// of attacker blocks mined before each honest one is geometric —
/// `P(L = l) = q^l·p` — so one inverse-CDF draw `⌊ln U / ln q⌋` replaces an
/// entire run of per-block coin flips (their sum is the same
/// negative-binomial attacker progress the block-by-block walk produces).
/// The catch-up phase is resolved by a single draw against the exact
/// gambler's-ruin probability `(q/p)^d` of erasing a deficit `d`, which
/// also removes the old implementation's abandon-at-64 truncation. Each
/// trial costs at most `z + 1` RNG draws (the catch-up draw is skipped when
/// the attacker already leads), independent of how long the race runs.
///
/// # Panics
///
/// Panics if `q` is not in `[0, 1]` or `trials == 0`.
#[must_use]
pub fn monte_carlo_double_spend(q: f64, z: u32, trials: u32, seed: u64) -> f64 {
    assert!((0.0..=1.0).contains(&q), "attacker share must be in [0,1]");
    assert!(trials > 0, "at least one trial required");
    if q >= 0.5 {
        return 1.0;
    }
    if q == 0.0 {
        // No attacker power: the race is won only when z = 0 (the merchant
        // accepted an unconfirmed transaction).
        return if z == 0 { 1.0 } else { 0.0 };
    }
    let p = 1.0 - q;
    let ln_q = q.ln();
    let catch_up = q / p;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut successes = 0u32;
    for _ in 0..trials {
        // Phase 1: attacker blocks mined during the confirmation window —
        // z geometric runs (f64→u64 casts saturate, so even a pathological
        // draw cannot wrap).
        let mut attacker = 0u64;
        for _ in 0..z {
            let u = 1.0 - rng.gen::<f64>(); // (0, 1]: ln is finite
            attacker += (u.ln() / ln_q) as u64;
        }
        // Phase 2: gambler's ruin from deficit z − attacker, resolved
        // exactly with one draw.
        let deficit = i64::from(z).saturating_sub_unsigned(attacker);
        let erased = deficit <= 0 || {
            let d = i32::try_from(deficit).unwrap_or(i32::MAX);
            rng.gen::<f64>() < catch_up.powi(d)
        };
        if erased {
            successes += 1;
        }
    }
    f64::from(successes) / f64::from(trials)
}

/// Confirmations needed to push double-spend success below `target`
/// for an attacker share `q`; `None` if no finite `z ≤ 10_000` suffices
/// (i.e. `q ≥ 0.5`).
#[must_use]
pub fn confirmations_for_security(q: f64, target: f64) -> Option<u32> {
    if q >= 0.5 {
        return None;
    }
    (1..=10_000).find(|&z| double_spend_success_probability(q, z) < target)
}

/// Result of a selfish-mining simulation (Eyal–Sirer, paper ref \[5\]).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SelfishMiningOutcome {
    /// The selfish pool's hash-power share α.
    pub alpha: f64,
    /// The propagation advantage γ.
    pub gamma: f64,
    /// Main-chain blocks won by the selfish pool.
    pub selfish_blocks: u64,
    /// Main-chain blocks won by honest miners.
    pub honest_blocks: u64,
}

impl SelfishMiningOutcome {
    /// The selfish pool's relative revenue (share of main-chain blocks).
    #[must_use]
    pub fn relative_revenue(&self) -> f64 {
        let total = self.selfish_blocks + self.honest_blocks;
        if total == 0 {
            0.0
        } else {
            self.selfish_blocks as f64 / total as f64
        }
    }

    /// Whether selfish mining beat honest mining (revenue above fair share
    /// α).
    #[must_use]
    pub fn profitable(&self) -> bool {
        self.relative_revenue() > self.alpha
    }
}

/// Simulates the Eyal–Sirer selfish-mining state machine for `blocks`
/// block-discovery events. `alpha` is the selfish pool's share; `gamma` the
/// fraction of honest power that mines on the selfish branch during a 1-1
/// race.
///
/// # Panics
///
/// Panics unless `alpha ∈ [0, 0.5]` and `gamma ∈ [0, 1]`.
#[must_use]
pub fn selfish_mining(alpha: f64, gamma: f64, blocks: u64, seed: u64) -> SelfishMiningOutcome {
    assert!((0.0..=0.5).contains(&alpha), "alpha must be in [0, 0.5]");
    assert!((0.0..=1.0).contains(&gamma), "gamma must be in [0, 1]");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut selfish_blocks = 0u64;
    let mut honest_blocks = 0u64;
    let mut lead = 0i64; // private-branch lead; -1 encodes the 1-1 race state
    const RACE: i64 = -1;

    for _ in 0..blocks {
        let selfish_found = rng.gen::<f64>() < alpha;
        match (lead, selfish_found) {
            (RACE, true) => {
                // Selfish extends its race branch and publishes: wins both.
                selfish_blocks += 2;
                lead = 0;
            }
            (RACE, false) => {
                // Honest finds during the race.
                if rng.gen::<f64>() < gamma {
                    // On the selfish branch: selfish keeps its block.
                    selfish_blocks += 1;
                    honest_blocks += 1;
                } else {
                    honest_blocks += 2;
                }
                lead = 0;
            }
            (0, true) => lead = 1,
            (0, false) => honest_blocks += 1,
            (1, true) => lead = 2,
            (1, false) => lead = RACE, // selfish publishes: 1-1 race
            (2, false) => {
                // Selfish publishes the whole branch, orphaning the honest
                // block.
                selfish_blocks += 2;
                lead = 0;
            }
            (_, true) => lead += 1,
            (_, false) => {
                // Deep lead shrinks; the oldest private block finalises.
                selfish_blocks += 1;
                lead -= 1;
            }
        }
    }
    // Settle any remaining private branch as selfish revenue.
    if lead > 0 {
        selfish_blocks += lead as u64;
    }
    SelfishMiningOutcome {
        alpha,
        gamma,
        selfish_blocks,
        honest_blocks,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nakamoto_whitepaper_values() {
        // z = 0 (accepting unconfirmed transactions) always loses.
        assert_eq!(double_spend_success_probability(0.1, 0), 1.0);
        let p1 = double_spend_success_probability(0.1, 1);
        assert!((p1 - 0.2045).abs() < 0.01, "z=1 q=0.1 gave {p1}");
        let p6 = double_spend_success_probability(0.1, 6);
        assert!(p6 < 1e-3 && p6 > 1e-5, "z=6 q=0.1 gave {p6}");
        let p30 = double_spend_success_probability(0.3, 2);
        assert!((p30 - 0.432).abs() < 0.02, "z=2 q=0.3 gave {p30}");
    }

    #[test]
    fn majority_always_wins() {
        assert_eq!(double_spend_success_probability(0.5, 100), 1.0);
        assert_eq!(double_spend_success_probability(0.9, 1_000), 1.0);
    }

    #[test]
    fn zero_attacker_never_wins() {
        assert_eq!(double_spend_success_probability(0.0, 1), 0.0);
    }

    #[test]
    fn probability_decreases_with_confirmations() {
        let ps: Vec<f64> = (1..8)
            .map(|z| double_spend_success_probability(0.25, z))
            .collect();
        for w in ps.windows(2) {
            assert!(w[1] < w[0]);
        }
    }

    #[test]
    fn probability_increases_with_share() {
        let ps: Vec<f64> = [0.05, 0.15, 0.25, 0.35, 0.45]
            .iter()
            .map(|&q| double_spend_success_probability(q, 6))
            .collect();
        for w in ps.windows(2) {
            assert!(w[1] > w[0]);
        }
    }

    #[test]
    #[should_panic(expected = "share must be in")]
    fn rejects_bad_share() {
        let _ = double_spend_success_probability(1.5, 6);
    }

    #[test]
    fn monte_carlo_matches_analytic() {
        for &(q, z) in &[(0.1, 2u32), (0.2, 3), (0.3, 4)] {
            let analytic = double_spend_success_probability(q, z);
            let mc = monte_carlo_double_spend(q, z, 60_000, 42);
            assert!(
                (mc - analytic).abs() < 0.01,
                "q={q} z={z}: mc {mc} vs analytic {analytic}"
            );
        }
    }

    #[test]
    fn monte_carlo_is_deterministic_per_seed() {
        let a = monte_carlo_double_spend(0.2, 3, 10_000, 7);
        let b = monte_carlo_double_spend(0.2, 3, 10_000, 7);
        assert_eq!(a, b);
    }

    #[test]
    fn monte_carlo_edge_shares() {
        // Powerless attacker: wins only the unconfirmed (z = 0) race.
        assert_eq!(monte_carlo_double_spend(0.0, 3, 1_000, 1), 0.0);
        assert_eq!(monte_carlo_double_spend(0.0, 0, 1_000, 1), 1.0);
        assert_eq!(monte_carlo_double_spend(0.5, 6, 1_000, 1), 1.0);
    }

    #[test]
    fn monte_carlo_geometric_sampling_matches_deep_races() {
        // Deeper confirmation windows stress the geometric phase-1 sampling
        // and the exact catch-up draw (no abandon-threshold truncation).
        for &(q, z) in &[(0.15, 8u32), (0.4, 10), (0.45, 2)] {
            let analytic = double_spend_success_probability(q, z);
            let mc = monte_carlo_double_spend(q, z, 80_000, 11);
            assert!(
                (mc - analytic).abs() < 0.01,
                "q={q} z={z}: mc {mc} vs analytic {analytic}"
            );
        }
    }

    #[test]
    fn confirmations_for_security_scales_with_share() {
        let z_small = confirmations_for_security(0.1, 1e-3).unwrap();
        let z_large = confirmations_for_security(0.3, 1e-3).unwrap();
        assert!(z_large > z_small);
        assert_eq!(confirmations_for_security(0.5, 1e-3), None);
    }

    #[test]
    fn selfish_mining_profitable_above_threshold() {
        // gamma = 0: threshold is 1/3. alpha = 0.42 must beat fair share.
        let out = selfish_mining(0.42, 0.0, 400_000, 1);
        assert!(out.profitable(), "revenue {}", out.relative_revenue());
        assert!(out.relative_revenue() > 0.45);
    }

    #[test]
    fn selfish_mining_unprofitable_below_threshold() {
        let out = selfish_mining(0.2, 0.0, 400_000, 2);
        assert!(!out.profitable(), "revenue {}", out.relative_revenue());
        // Revenue is positive but below the fair share.
        assert!(out.relative_revenue() > 0.05);
    }

    #[test]
    fn gamma_raises_selfish_revenue() {
        let low = selfish_mining(0.3, 0.0, 400_000, 3).relative_revenue();
        let high = selfish_mining(0.3, 0.9, 400_000, 3).relative_revenue();
        assert!(high > low);
    }

    #[test]
    fn selfish_outcome_accessors() {
        let out = SelfishMiningOutcome {
            alpha: 0.3,
            gamma: 0.0,
            selfish_blocks: 30,
            honest_blocks: 70,
        };
        assert!((out.relative_revenue() - 0.3).abs() < 1e-12);
        assert!(!out.profitable());
        let empty = SelfishMiningOutcome {
            alpha: 0.3,
            gamma: 0.0,
            selfish_blocks: 0,
            honest_blocks: 0,
        };
        assert_eq!(empty.relative_revenue(), 0.0);
    }

    #[test]
    #[should_panic(expected = "alpha")]
    fn selfish_mining_rejects_majority_alpha() {
        let _ = selfish_mining(0.6, 0.0, 100, 0);
    }
}
