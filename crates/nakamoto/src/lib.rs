//! # `fi-nakamoto` — Nakamoto consensus under correlated pool compromise
//!
//! The paper's running example is Bitcoin (§I, §III): voting power is hash
//! rate, replicas are miners, and delegation to mining pools collapses many
//! participants onto a handful of software stacks. This crate provides the
//! Proof-of-Work substrate for the experiments:
//!
//! * [`block`] / [`chain`] — a block tree with longest-chain (heaviest
//!   height, first-seen tie-break) selection and reorg accounting;
//! * [`miner`] — miners with hash power and strategies;
//! * [`pool`] — mining pools, including the exact Example-1 top-17 set and
//!   the delegation structure that makes one pool-software vulnerability
//!   compromise the pool's whole share;
//! * [`sim`] — an event-driven mining race with propagation delay (stale
//!   tips produce natural forks);
//! * [`attack`] — double-spend analysis (the analytic
//!   Nakamoto/Rosenfeld race and a Monte-Carlo cross-check) and a
//!   selfish-mining baseline (Eyal–Sirer), both parameterised by the
//!   attacker's share so correlated-compromise experiments can feed the
//!   compromised power straight in.
//!
//! ## Example
//!
//! ```
//! use fi_nakamoto::attack::double_spend_success_probability;
//!
//! // With 10% of hash power and 6 confirmations, double spends are rare...
//! assert!(double_spend_success_probability(0.10, 6) < 0.001);
//! // ...but a vulnerability compromising the top pools (say 55%) is fatal.
//! assert!((double_spend_success_probability(0.55, 6) - 1.0).abs() < 1e-12);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod attack;
pub mod block;
pub mod chain;
pub mod miner;
pub mod pool;
pub mod sim;

pub use attack::{double_spend_success_probability, monte_carlo_double_spend};
pub use block::Block;
pub use chain::BlockTree;
pub use miner::{Miner, MinerStrategy};
pub use pool::{bitcoin_pools_2023, Pool};
pub use sim::{MiningSim, MiningSimConfig, MiningSimReport};
