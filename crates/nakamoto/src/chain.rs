//! The block tree and longest-chain selection.

use std::collections::HashMap;

use fi_types::Digest;
use serde::{Deserialize, Serialize};

use crate::block::Block;

/// A block tree with longest-chain tip selection (ties broken by arrival
/// order, as Bitcoin nodes do).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BlockTree {
    blocks: HashMap<Digest, Block>,
    arrival: HashMap<Digest, u64>,
    next_arrival: u64,
    tip: Digest,
}

impl Default for BlockTree {
    fn default() -> Self {
        Self::new()
    }
}

impl BlockTree {
    /// A tree containing only genesis.
    #[must_use]
    pub fn new() -> Self {
        let genesis = Block::genesis();
        let mut blocks = HashMap::new();
        let mut arrival = HashMap::new();
        blocks.insert(genesis.id(), genesis);
        arrival.insert(genesis.id(), 0);
        BlockTree {
            blocks,
            arrival,
            next_arrival: 1,
            tip: genesis.id(),
        }
    }

    /// Inserts a block whose parent is present; returns `true` if it became
    /// the new tip. Re-inserting an existing block is a no-op returning
    /// `false`. Blocks with unknown parents are rejected (`false`) — the
    /// simulators always deliver parents first.
    pub fn insert(&mut self, block: Block) -> bool {
        if self.blocks.contains_key(&block.id()) {
            return false;
        }
        if !self.blocks.contains_key(&block.parent()) {
            return false;
        }
        let id = block.id();
        let height = block.height();
        self.blocks.insert(id, block);
        self.arrival.insert(id, self.next_arrival);
        self.next_arrival += 1;
        if height > self.height() {
            self.tip = id;
            true
        } else {
            false
        }
    }

    /// The current tip block.
    ///
    /// # Panics
    ///
    /// Never panics: the tip always exists.
    #[must_use]
    pub fn tip(&self) -> &Block {
        &self.blocks[&self.tip]
    }

    /// The main-chain height.
    #[must_use]
    pub fn height(&self) -> u64 {
        self.tip().height()
    }

    /// Total blocks including genesis.
    #[must_use]
    pub fn len(&self) -> usize {
        self.blocks.len()
    }

    /// Whether only genesis is present.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.blocks.len() == 1
    }

    /// Looks up a block.
    #[must_use]
    pub fn get(&self, id: &Digest) -> Option<&Block> {
        self.blocks.get(id)
    }

    /// Walks the main chain tip → genesis.
    #[must_use]
    pub fn main_chain(&self) -> Vec<&Block> {
        let mut chain = Vec::with_capacity(self.height() as usize + 1);
        let mut cursor = self.tip;
        loop {
            let block = &self.blocks[&cursor];
            chain.push(block);
            if block.height() == 0 {
                break;
            }
            cursor = block.parent();
        }
        chain
    }

    /// Whether `id` lies on the main chain.
    #[must_use]
    pub fn on_main_chain(&self, id: &Digest) -> bool {
        let Some(target) = self.blocks.get(id) else {
            return false;
        };
        let mut cursor = self.tip;
        loop {
            if cursor == *id {
                return true;
            }
            let block = &self.blocks[&cursor];
            if block.height() <= target.height() {
                return false;
            }
            cursor = block.parent();
        }
    }

    /// Confirmations of `id`: main-chain depth below the tip (tip itself
    /// has 1 confirmation, Bitcoin-style); `None` when off-chain.
    #[must_use]
    pub fn confirmations(&self, id: &Digest) -> Option<u64> {
        if !self.on_main_chain(id) {
            return None;
        }
        let block = &self.blocks[id];
        Some(self.height() - block.height() + 1)
    }

    /// Orphaned (off-main-chain, non-genesis) block count — the fork-rate
    /// numerator. Computed with a single main-chain walk, `O(blocks)`.
    #[must_use]
    pub fn orphans(&self) -> usize {
        // Non-genesis blocks minus the non-genesis main-chain length.
        (self.blocks.len() - 1) - self.height() as usize
    }

    /// Blocks on the main chain mined by `miner` — the revenue measure used
    /// by the selfish-mining baseline.
    #[must_use]
    pub fn main_chain_blocks_by(&self, miner: usize) -> usize {
        self.main_chain()
            .iter()
            .filter(|b| b.miner() == miner)
            .count()
    }

    /// Main-chain blocks per miner index (one chain walk for all miners).
    #[must_use]
    pub fn main_chain_blocks_per_miner(&self, miners: usize) -> Vec<usize> {
        let mut counts = vec![0usize; miners];
        for block in self.main_chain() {
            if let Some(slot) = counts.get_mut(block.miner()) {
                *slot += 1;
            }
        }
        counts
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fi_types::SimTime;

    fn t(secs: u64) -> SimTime {
        SimTime::from_secs(secs)
    }

    #[test]
    fn fresh_tree_is_genesis_only() {
        let tree = BlockTree::new();
        assert_eq!(tree.height(), 0);
        assert!(tree.is_empty());
        assert_eq!(tree.len(), 1);
        assert_eq!(tree.main_chain().len(), 1);
    }

    #[test]
    fn linear_growth_updates_tip() {
        let mut tree = BlockTree::new();
        let b1 = Block::mine(tree.tip(), 0, t(600), 0);
        assert!(tree.insert(b1));
        let b2 = Block::mine(tree.tip(), 1, t(1200), 0);
        assert!(tree.insert(b2));
        assert_eq!(tree.height(), 2);
        assert_eq!(tree.tip().id(), b2.id());
        assert_eq!(tree.main_chain().len(), 3);
    }

    #[test]
    fn rejects_unknown_parent_and_duplicates() {
        let mut tree = BlockTree::new();
        let orphan_parent = Block::mine(&Block::genesis(), 0, t(1), 99);
        let dangling = Block::mine(&orphan_parent, 0, t(2), 0);
        assert!(!tree.insert(dangling));
        let b1 = Block::mine(tree.tip(), 0, t(600), 0);
        assert!(tree.insert(b1));
        assert!(!tree.insert(b1));
        assert_eq!(tree.len(), 2);
    }

    #[test]
    fn fork_resolution_first_seen_wins_ties() {
        let mut tree = BlockTree::new();
        let genesis = *tree.tip();
        let a = Block::mine(&genesis, 0, t(600), 0);
        let b = Block::mine(&genesis, 1, t(601), 0);
        assert!(tree.insert(a)); // becomes tip
        assert!(!tree.insert(b)); // same height: first seen keeps tip
        assert_eq!(tree.tip().id(), a.id());
        assert_eq!(tree.orphans(), 1);
    }

    #[test]
    fn reorg_to_longer_branch() {
        let mut tree = BlockTree::new();
        let genesis = *tree.tip();
        let a1 = Block::mine(&genesis, 0, t(600), 0);
        tree.insert(a1);
        // Competing branch b1-b2 overtakes.
        let b1 = Block::mine(&genesis, 1, t(610), 0);
        tree.insert(b1);
        let b2 = Block::mine(&b1, 1, t(1200), 0);
        assert!(tree.insert(b2));
        assert_eq!(tree.tip().id(), b2.id());
        assert!(tree.on_main_chain(&b1.id()));
        assert!(!tree.on_main_chain(&a1.id()));
        assert_eq!(tree.orphans(), 1);
    }

    #[test]
    fn confirmations_count_from_tip() {
        let mut tree = BlockTree::new();
        let b1 = Block::mine(tree.tip(), 0, t(600), 0);
        tree.insert(b1);
        let b2 = Block::mine(tree.tip(), 0, t(1200), 0);
        tree.insert(b2);
        let b3 = Block::mine(tree.tip(), 0, t(1800), 0);
        tree.insert(b3);
        assert_eq!(tree.confirmations(&b1.id()), Some(3));
        assert_eq!(tree.confirmations(&b3.id()), Some(1));
        let stranger = Block::mine(&Block::genesis(), 9, t(1), 7);
        assert_eq!(tree.confirmations(&stranger.id()), None);
    }

    #[test]
    fn revenue_accounting() {
        let mut tree = BlockTree::new();
        let b1 = Block::mine(tree.tip(), 0, t(600), 0);
        tree.insert(b1);
        let b2 = Block::mine(tree.tip(), 1, t(1200), 0);
        tree.insert(b2);
        let b3 = Block::mine(tree.tip(), 0, t(1800), 0);
        tree.insert(b3);
        assert_eq!(tree.main_chain_blocks_by(0), 2);
        assert_eq!(tree.main_chain_blocks_by(1), 1);
        assert_eq!(tree.main_chain_blocks_by(9), 0);
    }
}
