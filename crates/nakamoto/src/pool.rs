//! Mining pools and delegation (paper §III-A).
//!
//! "Mining pool operators in Bitcoin attract and manage the mining power of
//! distributed participants, leading to an oligopoly." A pool is the unit of
//! *software* correlation: every member's hash power flows through the pool
//! operator's stack, so one vulnerability in (or one malicious decision by)
//! the operator redirects the pool's entire share.

use fi_entropy::bitcoin;
use fi_types::{PoolId, VotingPower};
use serde::{Deserialize, Serialize};

/// A mining pool: aggregate power under one operator configuration.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Pool {
    id: PoolId,
    name: String,
    power: VotingPower,
    /// Index of the operator's software configuration (in whatever
    /// configuration space the experiment uses). Pools sharing a
    /// configuration index fall to the same exploit.
    config: usize,
}

impl Pool {
    /// Creates a pool.
    #[must_use]
    pub fn new(id: PoolId, name: impl Into<String>, power: VotingPower, config: usize) -> Self {
        Pool {
            id,
            name: name.into(),
            power,
            config,
        }
    }

    /// Pool id.
    #[must_use]
    pub fn id(&self) -> PoolId {
        self.id
    }

    /// Pool name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Aggregate hash power.
    #[must_use]
    pub fn power(&self) -> VotingPower {
        self.power
    }

    /// Operator configuration index.
    #[must_use]
    pub fn config(&self) -> usize {
        self.config
    }
}

/// The Example-1 top-17 Bitcoin pools (2023-02-02) in milli-percent hash
/// power units, each with a unique operator configuration (the paper's
/// *best-case* diversity assumption). Pool 0 is Foundry USA at 34.239%.
#[must_use]
pub fn bitcoin_pools_2023() -> Vec<Pool> {
    let names = [
        "foundry-usa",
        "antpool",
        "f2pool",
        "binance-pool",
        "viabtc",
        "btc-com",
        "poolin",
        "luxor",
        "mara-pool",
        "sbi-crypto",
        "braiins",
        "ultimus",
        "pega-pool",
        "kucoin",
        "emcd",
        "okminer",
        "terra-pool",
    ];
    bitcoin::top17_units()
        .iter()
        .zip(names.iter())
        .enumerate()
        .map(|(i, (&units, name))| {
            Pool::new(PoolId::new(i as u64), *name, VotingPower::new(units), i)
        })
        .collect()
}

/// Total power of a pool set.
#[must_use]
pub fn total_power(pools: &[Pool]) -> VotingPower {
    pools.iter().map(Pool::power).sum()
}

/// The share of total power controlled if every pool whose configuration
/// index is in `compromised_configs` falls to one exploit — the bridge from
/// the vulnerability model to the attack analyses.
#[must_use]
pub fn compromised_share(pools: &[Pool], compromised_configs: &[usize], total: VotingPower) -> f64 {
    let captured: VotingPower = pools
        .iter()
        .filter(|p| compromised_configs.contains(&p.config()))
        .map(Pool::power)
        .sum();
    captured.share_of(total)
}

/// De-delegation: replaces each pool by `members` equal solo miners with
/// independent configurations, preserving total power (the decentralised
/// counterfactual of experiment E7; cf. SmartPool/non-outsourceable
/// puzzles, paper refs \[29\]–\[31\]).
#[must_use]
pub fn dedelegate(pools: &[Pool], members_per_pool: usize, next_config: usize) -> Vec<Pool> {
    let mut out = Vec::new();
    let mut config = next_config;
    let mut id = 0u64;
    for pool in pools {
        for (m, chunk) in pool
            .power()
            .split_even(members_per_pool.max(1))
            .into_iter()
            .enumerate()
        {
            out.push(Pool::new(
                PoolId::new(id),
                format!("{}-member-{m}", pool.name()),
                chunk,
                config,
            ));
            id += 1;
            config += 1;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn example1_pools_match_paper() {
        let pools = bitcoin_pools_2023();
        assert_eq!(pools.len(), 17);
        assert_eq!(pools[0].name(), "foundry-usa");
        assert_eq!(pools[0].power(), VotingPower::new(34_239));
        assert_eq!(pools[16].power(), VotingPower::new(100));
        // 99.145% of the network.
        assert_eq!(total_power(&pools), VotingPower::new(99_145));
        // Unique configurations (best-case assumption).
        let mut configs: Vec<usize> = pools.iter().map(Pool::config).collect();
        configs.sort_unstable();
        configs.dedup();
        assert_eq!(configs.len(), 17);
    }

    #[test]
    fn compromised_share_of_top_pool() {
        let pools = bitcoin_pools_2023();
        let total = VotingPower::new(100_000); // whole network
        let share = compromised_share(&pools, &[0], total);
        assert!((share - 0.34239).abs() < 1e-9);
        // Top-3 compromise crosses 50% + the paper's oligopoly warning.
        let share3 = compromised_share(&pools, &[0, 1, 2], total);
        assert!((share3 - 0.67217).abs() < 1e-9);
        assert!(share3 > 0.5);
    }

    #[test]
    fn compromised_share_empty_is_zero() {
        let pools = bitcoin_pools_2023();
        assert_eq!(
            compromised_share(&pools, &[], VotingPower::new(100_000)),
            0.0
        );
    }

    #[test]
    fn dedelegate_preserves_power_and_diversifies() {
        let pools = bitcoin_pools_2023();
        let solo = dedelegate(&pools, 10, 100);
        assert_eq!(solo.len(), 170);
        assert_eq!(total_power(&solo), total_power(&pools));
        // All configurations unique.
        let mut configs: Vec<usize> = solo.iter().map(Pool::config).collect();
        configs.sort_unstable();
        configs.dedup();
        assert_eq!(configs.len(), 170);
        // One exploit now captures a tenth of the old head at most.
        let worst = compromised_share(&solo, &[100], VotingPower::new(100_000));
        assert!(worst < 0.035);
    }

    #[test]
    fn dedelegate_handles_zero_members() {
        let pools = bitcoin_pools_2023();
        let solo = dedelegate(&pools[..1], 0, 0);
        assert_eq!(solo.len(), 1);
        assert_eq!(solo[0].power(), pools[0].power());
    }
}
