//! The mining race: exponential block arrivals, power-proportional winner
//! selection, propagation-delay forks, and an optional private-branch
//! attacker.

use fi_types::{SimTime, VotingPower};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::block::Block;
use crate::chain::BlockTree;
use crate::miner::{Miner, MinerStrategy};

/// Parameters of a mining simulation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MiningSimConfig {
    /// Mean interval between blocks across the whole network (Bitcoin:
    /// 600 s).
    pub block_interval: SimTime,
    /// One-way propagation delay; a miner that finds a block within the
    /// delay of the previous (foreign) block mines on the stale parent,
    /// producing a natural fork.
    pub propagation_delay: SimTime,
    /// How many block-discovery events to simulate.
    pub blocks: u64,
}

impl Default for MiningSimConfig {
    /// Bitcoin-like: 600 s blocks, 5 s propagation, 1 000 blocks.
    fn default() -> Self {
        MiningSimConfig {
            block_interval: SimTime::from_secs(600),
            propagation_delay: SimTime::from_secs(5),
            blocks: 1_000,
        }
    }
}

/// What a run produces.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MiningSimReport {
    /// Height of the public main chain at the end.
    pub main_chain_height: u64,
    /// Orphaned public blocks.
    pub orphans: usize,
    /// Orphan fraction of all public blocks.
    pub fork_rate: f64,
    /// Main-chain blocks per miner index.
    pub blocks_by_miner: Vec<usize>,
    /// Length of the attacker's private branch (0 when no attacker).
    pub private_branch_len: u64,
    /// Public-chain growth since the attack started.
    pub public_growth_since_attack: u64,
    /// Whether the private branch ended longer than the public growth —
    /// a successful history rewrite.
    pub attacker_ahead: bool,
    /// Simulated duration.
    pub duration: SimTime,
}

/// An event-driven longest-chain mining simulation.
#[derive(Debug)]
pub struct MiningSim {
    miners: Vec<Miner>,
    config: MiningSimConfig,
    rng: StdRng,
}

impl MiningSim {
    /// Creates a simulation over `miners`.
    ///
    /// # Panics
    ///
    /// Panics if `miners` is empty.
    #[must_use]
    pub fn new(miners: Vec<Miner>, config: MiningSimConfig, seed: u64) -> Self {
        assert!(!miners.is_empty(), "at least one miner required");
        MiningSim {
            miners,
            config,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Mutable access to miners (to flip strategies mid-experiment the
    /// caller runs two phases with the same sim).
    pub fn miners_mut(&mut self) -> &mut [Miner] {
        &mut self.miners
    }

    fn total_effective_power(&self) -> u64 {
        self.miners
            .iter()
            .map(|m| m.effective_power().as_units())
            .sum()
    }

    fn sample_winner(&mut self) -> Option<usize> {
        let total = self.total_effective_power();
        if total == 0 {
            return None;
        }
        let mut target = self.rng.gen_range(0..total);
        for (i, m) in self.miners.iter().enumerate() {
            let units = m.effective_power().as_units();
            if target < units {
                return Some(i);
            }
            target -= units;
        }
        None
    }

    /// Runs the race to completion.
    #[must_use]
    pub fn run(mut self) -> MiningSimReport {
        let mut tree = BlockTree::new();
        let mut now = SimTime::ZERO;
        let mut salt = 0u64;
        // Private-branch bookkeeping.
        let mut private_len = 0u64;
        let attack_active = self
            .miners
            .iter()
            .any(|m| m.strategy() == MinerStrategy::PrivateBranch);
        let public_height_at_attack = 0u64;

        // Last public block's (time, miner), for the stale-view rule.
        let mut last_block_time = SimTime::ZERO;
        let mut last_block_miner = usize::MAX;
        let mut last_tip_before: Option<Block> = None;

        let mean = self.config.block_interval.as_micros().max(1) as f64;
        for _ in 0..self.config.blocks {
            let Some(winner) = self.sample_winner() else {
                break;
            };
            let u: f64 = self.rng.gen_range(f64::EPSILON..1.0);
            let dt = SimTime::from_micros((-(u.ln()) * mean) as u64);
            now = now.saturating_add(dt);

            match self.miners[winner].strategy() {
                MinerStrategy::PrivateBranch => {
                    private_len += 1;
                }
                MinerStrategy::Honest => {
                    // Stale view: if the latest public block is foreign and
                    // arrived within the propagation delay, this miner has
                    // not seen it yet and mines on the previous tip.
                    let stale = last_block_miner != winner
                        && last_block_miner != usize::MAX
                        && now.saturating_sub(last_block_time) < self.config.propagation_delay;
                    let parent: Block = if stale {
                        last_tip_before.unwrap_or(*tree.tip())
                    } else {
                        *tree.tip()
                    };
                    let block = Block::mine(&parent, winner, now, salt);
                    salt += 1;
                    last_tip_before = Some(*tree.tip());
                    tree.insert(block);
                    last_block_time = now;
                    last_block_miner = winner;
                }
                MinerStrategy::Offline => unreachable!("offline miners have zero power"),
            }
        }

        let public_blocks = tree.len() - 1;
        let orphans = tree.orphans();
        let blocks_by_miner = tree.main_chain_blocks_per_miner(self.miners.len());
        let public_growth = tree.height() - public_height_at_attack;
        MiningSimReport {
            main_chain_height: tree.height(),
            orphans,
            fork_rate: if public_blocks == 0 {
                0.0
            } else {
                orphans as f64 / public_blocks as f64
            },
            blocks_by_miner,
            private_branch_len: private_len,
            public_growth_since_attack: public_growth,
            attacker_ahead: attack_active && private_len > public_growth,
            duration: now,
        }
    }
}

/// Convenience: run a race with the given power shares (honest miners
/// only) and return the report.
///
/// # Panics
///
/// Panics if `powers` is empty.
#[must_use]
pub fn run_honest_race(
    powers: &[VotingPower],
    config: MiningSimConfig,
    seed: u64,
) -> MiningSimReport {
    let miners = powers
        .iter()
        .enumerate()
        .map(|(i, &p)| Miner::new(i, p))
        .collect();
    MiningSim::new(miners, config, seed).run()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn equal_miners(n: usize, power: u64) -> Vec<Miner> {
        (0..n)
            .map(|i| Miner::new(i, VotingPower::new(power)))
            .collect()
    }

    #[test]
    fn fork_free_with_zero_delay() {
        let config = MiningSimConfig {
            propagation_delay: SimTime::ZERO,
            blocks: 500,
            ..MiningSimConfig::default()
        };
        let report = MiningSim::new(equal_miners(5, 10), config, 1).run();
        assert_eq!(report.orphans, 0);
        assert_eq!(report.fork_rate, 0.0);
        assert_eq!(report.main_chain_height, 500);
    }

    #[test]
    fn forks_appear_with_large_delay() {
        let config = MiningSimConfig {
            block_interval: SimTime::from_secs(600),
            propagation_delay: SimTime::from_secs(300), // absurdly slow net
            blocks: 2_000,
        };
        let report = MiningSim::new(equal_miners(5, 10), config, 2).run();
        assert!(report.orphans > 0, "expected forks: {report:?}");
        assert!(report.fork_rate > 0.05);
        assert!(report.main_chain_height < 2_000);
    }

    #[test]
    fn fork_rate_grows_with_delay() {
        let rate = |delay_secs: u64| {
            let config = MiningSimConfig {
                block_interval: SimTime::from_secs(600),
                propagation_delay: SimTime::from_secs(delay_secs),
                blocks: 3_000,
            };
            MiningSim::new(equal_miners(8, 10), config, 3)
                .run()
                .fork_rate
        };
        assert!(rate(120) > rate(10));
    }

    #[test]
    fn revenue_tracks_power_share() {
        let mut powers: Vec<VotingPower> = vec![VotingPower::new(60)];
        powers.extend(std::iter::repeat_n(VotingPower::new(10), 4));
        let config = MiningSimConfig {
            propagation_delay: SimTime::ZERO,
            blocks: 5_000,
            ..MiningSimConfig::default()
        };
        let report = run_honest_race(&powers, config, 4);
        let share0 = report.blocks_by_miner[0] as f64 / report.main_chain_height as f64;
        assert!((share0 - 0.6).abs() < 0.05, "share was {share0}");
    }

    #[test]
    fn private_branch_race_majority_attacker_wins() {
        let mut miners = equal_miners(2, 10);
        miners[0] = Miner::new(0, VotingPower::new(60)); // 60% attacker
        miners[0].set_strategy(MinerStrategy::PrivateBranch);
        miners[1] = Miner::new(1, VotingPower::new(40));
        let config = MiningSimConfig {
            propagation_delay: SimTime::ZERO,
            blocks: 2_000,
            ..MiningSimConfig::default()
        };
        let report = MiningSim::new(miners, config, 5).run();
        assert!(report.attacker_ahead, "{report:?}");
        assert!(report.private_branch_len > report.public_growth_since_attack);
    }

    #[test]
    fn private_branch_race_minority_attacker_loses() {
        let mut miners = equal_miners(2, 10);
        miners[0] = Miner::new(0, VotingPower::new(20));
        miners[0].set_strategy(MinerStrategy::PrivateBranch);
        miners[1] = Miner::new(1, VotingPower::new(80));
        let config = MiningSimConfig {
            propagation_delay: SimTime::ZERO,
            blocks: 2_000,
            ..MiningSimConfig::default()
        };
        let report = MiningSim::new(miners, config, 6).run();
        assert!(!report.attacker_ahead, "{report:?}");
    }

    #[test]
    fn offline_miners_mine_nothing() {
        let mut miners = equal_miners(3, 10);
        miners[2].set_strategy(MinerStrategy::Offline);
        let config = MiningSimConfig {
            propagation_delay: SimTime::ZERO,
            blocks: 300,
            ..MiningSimConfig::default()
        };
        let report = MiningSim::new(miners, config, 7).run();
        assert_eq!(report.blocks_by_miner[2], 0);
        assert_eq!(report.main_chain_height, 300);
    }

    #[test]
    fn determinism_per_seed() {
        let config = MiningSimConfig::default();
        let a = MiningSim::new(equal_miners(4, 10), config, 9).run();
        let b = MiningSim::new(equal_miners(4, 10), config, 9).run();
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "at least one miner")]
    fn empty_miner_set_rejected() {
        let _ = MiningSim::new(vec![], MiningSimConfig::default(), 0);
    }

    #[test]
    fn all_offline_terminates_early() {
        let mut miners = equal_miners(2, 10);
        miners[0].set_strategy(MinerStrategy::Offline);
        miners[1].set_strategy(MinerStrategy::Offline);
        let report = MiningSim::new(miners, MiningSimConfig::default(), 0).run();
        assert_eq!(report.main_chain_height, 0);
    }
}
