//! Property-based tests for the Nakamoto substrate: block-tree invariants,
//! double-spend monotonicity, and race-simulation conservation laws.

use fi_nakamoto::attack::double_spend_success_probability;
use fi_nakamoto::block::Block;
use fi_nakamoto::chain::BlockTree;
use fi_nakamoto::sim::{run_honest_race, MiningSimConfig};
use fi_types::{SimTime, VotingPower};
use proptest::prelude::*;

proptest! {
    // Pinned case count: the vendored proptest runner derives every case
    // seed from the test name, so this suite is reproducible bit-for-bit.
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Tree conservation: blocks = main-chain length + orphans + genesis,
    /// and per-miner main-chain counts sum to the height.
    #[test]
    fn tree_conservation(inserts in proptest::collection::vec((0usize..4, 0u8..2), 1..60)) {
        let mut tree = BlockTree::new();
        // Grow a tree: each step mines on either the tip or (fork bit set)
        // the tip's parent when possible.
        for (salt, (miner, fork)) in inserts.into_iter().enumerate() {
            let salt = salt as u64;
            let parent = if fork == 1 && tree.height() >= 1 {
                *tree.get(&tree.tip().parent()).unwrap()
            } else {
                *tree.tip()
            };
            let block = Block::mine(&parent, miner, SimTime::from_secs(salt + 1), salt);
            tree.insert(block);
        }
        let total_non_genesis = tree.len() - 1;
        prop_assert_eq!(total_non_genesis, tree.height() as usize + tree.orphans());
        let per_miner = tree.main_chain_blocks_per_miner(4);
        prop_assert_eq!(per_miner.iter().sum::<usize>(), tree.height() as usize);
        // Main chain heights are contiguous from tip to genesis.
        let chain = tree.main_chain();
        for w in chain.windows(2) {
            prop_assert_eq!(w[0].height(), w[1].height() + 1);
            prop_assert_eq!(w[0].parent(), w[1].id());
        }
    }

    /// Double-spend probability is monotone in the attacker share and
    /// antitone in confirmations, and bounded in [0, 1].
    #[test]
    fn double_spend_monotone(q in 0.0f64..0.49, z in 1u32..12) {
        let p = double_spend_success_probability(q, z);
        prop_assert!((0.0..=1.0).contains(&p));
        let p_more_share = double_spend_success_probability((q + 0.01).min(0.499), z);
        prop_assert!(p_more_share >= p - 1e-12);
        let p_more_confs = double_spend_success_probability(q, z + 1);
        prop_assert!(p_more_confs <= p + 1e-12);
    }

    /// The honest race conserves blocks: height + orphans = blocks mined,
    /// and per-miner revenue sums to the height.
    #[test]
    fn race_conservation(
        n_miners in 1usize..8,
        blocks in 50u64..400,
        seed in 0u64..50,
        delay_s in 0u64..120,
    ) {
        let powers: Vec<VotingPower> =
            (0..n_miners).map(|i| VotingPower::new(10 + i as u64)).collect();
        let config = MiningSimConfig {
            block_interval: SimTime::from_secs(600),
            propagation_delay: SimTime::from_secs(delay_s),
            blocks,
        };
        let report = run_honest_race(&powers, config, seed);
        prop_assert_eq!(
            report.main_chain_height as usize + report.orphans,
            blocks as usize
        );
        let revenue: usize = report.blocks_by_miner.iter().sum();
        prop_assert_eq!(revenue, report.main_chain_height as usize);
        prop_assert!(report.fork_rate >= 0.0 && report.fork_rate <= 1.0);
        // Zero delay => zero forks.
        if delay_s == 0 {
            prop_assert_eq!(report.orphans, 0);
        }
    }

    /// Confirmations always lie on the main chain and decrease toward the
    /// tip.
    #[test]
    fn confirmations_decrease_toward_tip(chain_len in 1u64..30) {
        let mut tree = BlockTree::new();
        let mut ids = Vec::new();
        for i in 0..chain_len {
            let block = Block::mine(tree.tip(), 0, SimTime::from_secs(i + 1), i);
            ids.push(block.id());
            tree.insert(block);
        }
        for (i, id) in ids.iter().enumerate() {
            let confs = tree.confirmations(id).unwrap();
            prop_assert_eq!(confs, chain_len - i as u64);
        }
    }
}
