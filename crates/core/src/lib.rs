//! # `fault-independence` — the paper's contribution as a library
//!
//! This crate is the facade over the workspace that reproduces *Fault
//! Independence in Blockchain* (Jiangshan Yu, DSN'23, arXiv:2306.05690). It
//! packages the paper's pipeline end to end:
//!
//! 1. **Configuration discovery** — replicas attest their stacks
//!    ([`fi_attest`]); the [`DiversityMonitor`] challenges, verifies, and
//!    records quotes (§III-B, Remark 3).
//! 2. **Diversity quantification** — the monitor derives the voting-power
//!    configuration distribution and reports Shannon entropy, effective
//!    configurations, evenness, min-entropy, and κ-optimality (§IV,
//!    Definition 1).
//! 3. **Resilience analysis** — the [`ResilienceAnalyzer`] combines an
//!    assignment with a vulnerability database and evaluates the safety
//!    condition `f ≥ Σ_i f^i_t` (§II-C), ranks single-product exposures,
//!    and sizes vulnerability windows.
//! 4. **Diversity management** — the [`Recommender`] proposes replica
//!    reconfigurations that raise entropy toward κ-optimal fault
//!    independence (the permissionless analogue of Lazarus, §III-A).
//!
//! The consensus substrates used by the paper's experiments are re-exported:
//! [`fi_bft`] (PBFT under correlated compromise), [`fi_nakamoto`]
//! (Proof-of-Work, pools, double-spend races), and [`fi_committee`]
//! (diversity-enforcing committee selection, §V's two-tier sketch) —
//! plus [`fi_scenarios`], the declarative adversary-scenario model and
//! multi-threaded campaign runner that sweeps resilience grids across all
//! three substrates (`cargo run --release -p fi-bench --bin scenarios`),
//! and [`fi_fleet`], the sharded epoch-snapshot serving layer that runs
//! the attestation→selection pipeline concurrently at fleet scale
//! ([`DiversityReport::from_snapshot`] and
//! [`Recommender::plan_for_snapshot`] are its monitoring/management
//! read paths). [`fi_serve`] fronts that fleet with a backpressured
//! request pipeline — bounded ingress, edge coalescing, per-shard
//! mailbox workers, watermark admission control — plus the
//! deterministic simnet load scenarios that prove the pipeline
//! semantically invisible at million-device scale.
//!
//! ## Quickstart
//!
//! ```
//! use fault_independence::prelude::*;
//!
//! // Build a configuration space and assign 12 replicas round-robin.
//! let space = ConfigurationSpace::cartesian(&[
//!     catalog::operating_systems()[..4].to_vec(),
//!     catalog::crypto_libraries()[..2].to_vec(),
//! ])?;
//! let assignment = Assignment::round_robin(&space, 12, VotingPower::new(100))?;
//!
//! // One critical OS vulnerability, disclosed at t=0, patched at t=1h.
//! let os = &catalog::operating_systems()[0];
//! let mut db = VulnerabilityDb::new();
//! db.add(
//!     Vulnerability::new(
//!         VulnId::new(0),
//!         "CVE-2038-0001",
//!         ComponentSelector::product(os.kind(), os.name()),
//!         Severity::Critical,
//!     )
//!     .with_window(SimTime::ZERO, SimTime::from_secs(3600)),
//! );
//!
//! // Analyze: does the correlated fault stay within f?
//! let analyzer = ResilienceAnalyzer::new(assignment, db);
//! let report = analyzer.analyze_at(SimTime::from_secs(10));
//! assert_eq!(report.active_vulnerabilities, 1);
//! assert!(report.sum_compromised < report.total_power);
//! # Ok::<(), fault_independence::CoreError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analyzer;
pub mod error;
pub mod monitor;
pub mod recommend;
pub mod report;
pub mod rotation;

pub use analyzer::{ResilienceAnalyzer, ResilienceReport};
pub use error::CoreError;
pub use monitor::{DiversityMonitor, DiversityReport};
pub use recommend::{Recommendation, Recommender};
pub use rotation::{RotationEntropyTracker, RotationPlanner, RotationStep};

// Substrate re-exports: downstream users depend on this crate alone.
pub use fi_attest;
pub use fi_bft;
pub use fi_committee;
pub use fi_config;
pub use fi_entropy;
pub use fi_fleet;
pub use fi_nakamoto;
pub use fi_scenarios;
pub use fi_serve;
pub use fi_simnet;
pub use fi_types;

/// Everything a typical user needs, in one import.
pub mod prelude {
    pub use crate::analyzer::{ResilienceAnalyzer, ResilienceReport};
    pub use crate::error::CoreError;
    pub use crate::monitor::{DiversityMonitor, DiversityReport};
    pub use crate::recommend::{Recommendation, Recommender};
    pub use crate::rotation::{RotationEntropyTracker, RotationPlanner, RotationStep};
    pub use fi_attest::prelude::*;
    pub use fi_config::prelude::*;
    pub use fi_entropy::{AbundanceVector, Distribution};
    pub use fi_fleet::{ChurnTraceConfig, EpochSnapshot, ShardedFleet};
    pub use fi_scenarios::prelude::*;
    pub use fi_types::{ReplicaId, SimTime, VotingPower, VulnId};
}
