//! Time-based configuration rotation (the Lazarus idea, paper §III-A, plus
//! the proactive-security pointers of refs \[23\]–\[27\]).
//!
//! Even a κ-optimal assignment leaves each replica exposed to its *own*
//! stack's next zero-day indefinitely. Rotating replicas across
//! configurations bounds the time any (replica, configuration) pair is
//! exposed, without changing the configuration *distribution* — rotation is
//! a measure-preserving permutation, so the entropy the paper cares about
//! is untouched while the attacker's reconnaissance ("which replicas run
//! the product I can exploit?", Remark 3's privacy concern) goes stale
//! every period.

use std::collections::HashMap;

use fi_config::Assignment;
use fi_entropy::EntropyAccumulator;
use fi_types::{ReplicaId, SimTime, VotingPower};
use serde::{Deserialize, Serialize};

/// One scheduled migration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RotationStep {
    /// When to apply.
    pub at: SimTime,
    /// Which replica migrates.
    pub replica: ReplicaId,
    /// Destination configuration index.
    pub to_config: usize,
}

/// Plans cyclic configuration rotation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RotationPlanner {
    period: SimTime,
    stride: usize,
}

impl RotationPlanner {
    /// A planner that rotates every `period`, shifting each replica's
    /// configuration index by `stride` (mod the space size) per round.
    /// `stride` must be non-zero; strides coprime to the space size visit
    /// every configuration before repeating.
    ///
    /// # Panics
    ///
    /// Panics if `period` is zero or `stride` is zero.
    #[must_use]
    pub fn new(period: SimTime, stride: usize) -> Self {
        assert!(!period.is_zero(), "rotation period must be positive");
        assert!(stride > 0, "rotation stride must be non-zero");
        RotationPlanner { period, stride }
    }

    /// The rotation period.
    #[must_use]
    pub fn period(&self) -> SimTime {
        self.period
    }

    /// Plans all rotation steps within `[period, horizon]`.
    ///
    /// Each round moves every replica from configuration `c` to
    /// `(c + stride) mod k`. Because the shift is a permutation applied to
    /// every replica uniformly, per-configuration replica counts — and
    /// hence the power-weighted distribution and its entropy — are
    /// preserved exactly *when the starting counts are balanced*; for
    /// unbalanced assignments the counts rotate with the replicas, which
    /// still preserves the entropy (the multiset of per-configuration
    /// powers is invariant under the cyclic relabeling).
    #[must_use]
    pub fn plan(&self, assignment: &Assignment, horizon: SimTime) -> Vec<RotationStep> {
        let k = assignment.space().len();
        let mut steps = Vec::new();
        if k <= 1 {
            return steps;
        }
        let mut round = 1u64;
        let mut current: Vec<(ReplicaId, usize)> = assignment
            .entries()
            .iter()
            .map(|e| (e.replica, e.config))
            .collect();
        loop {
            let at = SimTime::from_micros(self.period.as_micros().saturating_mul(round));
            if at > horizon || at.is_zero() {
                break;
            }
            for (replica, config) in &mut current {
                *config = (*config + self.stride) % k;
                steps.push(RotationStep {
                    at,
                    replica: *replica,
                    to_config: *config,
                });
            }
            round += 1;
        }
        steps
    }

    /// Applies every step with `at <= now` to the assignment (idempotent
    /// per step; steps must be those produced by [`plan`](Self::plan) for
    /// this assignment).
    ///
    /// # Errors
    ///
    /// Returns [`fi_config::ConfigError`] if a step references an unknown
    /// replica or configuration.
    pub fn apply_due(
        assignment: &mut Assignment,
        steps: &[RotationStep],
        now: SimTime,
    ) -> Result<usize, fi_config::ConfigError> {
        let mut applied = 0;
        for step in steps.iter().filter(|s| s.at <= now) {
            assignment.reassign(step.replica, step.to_config)?;
            applied += 1;
        }
        Ok(applied)
    }

    /// The longest continuous interval any replica keeps one configuration
    /// under this planner: exactly one period.
    #[must_use]
    pub fn max_exposure(&self) -> SimTime {
        self.period
    }
}

/// O(1)-per-step entropy monitoring across rotation (or arbitrary
/// migration) steps.
///
/// A diversity monitor that re-derives the full power-weighted distribution
/// after every applied [`RotationStep`] pays O(replicas) per step; this
/// tracker seeds an [`EntropyAccumulator`] from the assignment once and then
/// moves each migrating replica's power between configuration buckets in
/// O(1), exposing the running entropy (which rotation provably preserves —
/// the tracker lets operators *watch* that invariant instead of trusting
/// it).
#[derive(Debug, Clone)]
pub struct RotationEntropyTracker {
    acc: EntropyAccumulator,
    positions: HashMap<ReplicaId, (usize, VotingPower)>,
}

impl RotationEntropyTracker {
    /// Seeds the tracker from an assignment's current buckets (O(replicas),
    /// once).
    #[must_use]
    pub fn new(assignment: &Assignment) -> Self {
        let acc = assignment.entropy_accumulator();
        let positions = assignment
            .entries()
            .iter()
            .map(|e| (e.replica, (e.config, e.power)))
            .collect();
        RotationEntropyTracker { acc, positions }
    }

    /// The tracked entropy (bits) of the power-weighted configuration
    /// distribution. O(1).
    #[must_use]
    pub fn entropy_bits(&self) -> f64 {
        self.acc.entropy_bits()
    }

    /// Applies one migration step in O(1) and returns the entropy after it.
    ///
    /// # Errors
    ///
    /// Mirrors [`Assignment::reassign`]:
    /// [`fi_config::ConfigError::UnknownConfiguration`] for an out-of-range
    /// destination, [`fi_config::ConfigError::EmptyAssignment`] for a
    /// replica the tracker has never seen.
    pub fn apply(&mut self, step: &RotationStep) -> Result<f64, fi_config::ConfigError> {
        if step.to_config >= self.acc.slots() {
            return Err(fi_config::ConfigError::UnknownConfiguration {
                index: step.to_config,
                space_size: self.acc.slots(),
            });
        }
        let Some((config, power)) = self.positions.get_mut(&step.replica) else {
            return Err(fi_config::ConfigError::EmptyAssignment);
        };
        self.acc
            .apply_move(*config, step.to_config, power.as_units());
        *config = step.to_config;
        Ok(self.acc.entropy_bits())
    }

    /// Applies every step with `at <= now`, returning the entropy after the
    /// last applied step (or the current entropy if none were due).
    ///
    /// # Errors
    ///
    /// As [`apply`](Self::apply).
    pub fn apply_due(
        &mut self,
        steps: &[RotationStep],
        now: SimTime,
    ) -> Result<f64, fi_config::ConfigError> {
        for step in steps.iter().filter(|s| s.at <= now) {
            self.apply(step)?;
        }
        Ok(self.entropy_bits())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fi_config::prelude::*;

    fn space(k: usize) -> ConfigurationSpace {
        ConfigurationSpace::cartesian(&[catalog::operating_systems()[..k].to_vec()]).unwrap()
    }

    fn planner() -> RotationPlanner {
        RotationPlanner::new(SimTime::from_secs(3600), 1)
    }

    #[test]
    fn plan_covers_horizon_rounds() {
        let assignment = Assignment::round_robin(&space(4), 8, VotingPower::new(10)).unwrap();
        let steps = planner().plan(&assignment, SimTime::from_secs(3 * 3600));
        // 3 rounds x 8 replicas.
        assert_eq!(steps.len(), 24);
        assert!(steps.iter().all(|s| s.at.as_micros() % 3_600_000_000 == 0));
    }

    #[test]
    fn rotation_preserves_entropy() {
        let assignment = Assignment::round_robin(&space(4), 8, VotingPower::new(10)).unwrap();
        let before = assignment.entropy_bits().unwrap();
        let steps = planner().plan(&assignment, SimTime::from_secs(3600));
        let mut rotated = assignment.clone();
        RotationPlanner::apply_due(&mut rotated, &steps, SimTime::from_secs(3600)).unwrap();
        assert!((rotated.entropy_bits().unwrap() - before).abs() < 1e-12);
        // But every replica moved.
        for e in assignment.entries() {
            assert_ne!(
                rotated.config_of(e.replica),
                Some(e.config),
                "replica {} did not move",
                e.replica
            );
        }
    }

    #[test]
    fn rotation_preserves_entropy_even_when_skewed() {
        // 5 replicas on config 0, 1 on config 1 (skewed): the multiset of
        // per-config masses is rotated, not equalized — entropy invariant.
        let s = space(4);
        let entries: Vec<fi_config::generator::AssignmentEntry> = (0..6u64)
            .map(|i| fi_config::generator::AssignmentEntry {
                replica: ReplicaId::new(i),
                config: usize::from(i >= 5),
                power: VotingPower::new(10),
            })
            .collect();
        let assignment = Assignment::new(s, entries).unwrap();
        let before = assignment.entropy_bits().unwrap();
        let steps = planner().plan(&assignment, SimTime::from_secs(3600));
        let mut rotated = assignment.clone();
        RotationPlanner::apply_due(&mut rotated, &steps, SimTime::from_secs(3600)).unwrap();
        assert!((rotated.entropy_bits().unwrap() - before).abs() < 1e-12);
    }

    #[test]
    fn coprime_stride_visits_every_configuration() {
        let assignment = Assignment::monoculture(&space(5), 0, 1, VotingPower::new(10)).unwrap();
        let p = RotationPlanner::new(SimTime::from_secs(1), 2); // gcd(2,5)=1
        let steps = p.plan(&assignment, SimTime::from_secs(5));
        let visited: std::collections::HashSet<usize> = steps.iter().map(|s| s.to_config).collect();
        assert_eq!(visited.len(), 5);
    }

    #[test]
    fn apply_due_respects_time() {
        let assignment = Assignment::round_robin(&space(4), 4, VotingPower::new(10)).unwrap();
        let steps = planner().plan(&assignment, SimTime::from_secs(10 * 3600));
        let mut working = assignment.clone();
        let applied =
            RotationPlanner::apply_due(&mut working, &steps, SimTime::from_secs(2 * 3600)).unwrap();
        assert_eq!(applied, 8, "two rounds of four replicas");
    }

    #[test]
    fn single_config_space_needs_no_rotation() {
        let assignment = Assignment::monoculture(&space(1), 0, 4, VotingPower::new(1)).unwrap();
        assert!(planner()
            .plan(&assignment, SimTime::from_secs(10_000))
            .is_empty());
    }

    #[test]
    fn max_exposure_is_one_period() {
        assert_eq!(planner().max_exposure(), SimTime::from_secs(3600));
    }

    #[test]
    fn tracker_follows_applied_steps_without_recomputation() {
        let assignment = Assignment::round_robin(&space(4), 8, VotingPower::new(10)).unwrap();
        let steps = planner().plan(&assignment, SimTime::from_secs(3 * 3600));
        let mut tracker = RotationEntropyTracker::new(&assignment);
        assert!((tracker.entropy_bits() - assignment.entropy_bits().unwrap()).abs() < 1e-12);

        let mut rotated = assignment.clone();
        for step in &steps {
            let tracked = tracker.apply(step).unwrap();
            rotated.reassign(step.replica, step.to_config).unwrap();
            let recomputed = rotated.entropy_bits().unwrap();
            assert!(
                (tracked - recomputed).abs() < 1e-9,
                "tracked {tracked} vs recomputed {recomputed}"
            );
        }
        // Rotation is measure-preserving: entropy is invariant end-to-end.
        assert!((tracker.entropy_bits() - assignment.entropy_bits().unwrap()).abs() < 1e-9);
    }

    #[test]
    fn tracker_apply_due_matches_planner_apply_due() {
        let assignment = Assignment::round_robin(&space(4), 6, VotingPower::new(7)).unwrap();
        let steps = planner().plan(&assignment, SimTime::from_secs(5 * 3600));
        let now = SimTime::from_secs(2 * 3600);

        let mut tracker = RotationEntropyTracker::new(&assignment);
        let tracked = tracker.apply_due(&steps, now).unwrap();

        let mut applied = assignment.clone();
        RotationPlanner::apply_due(&mut applied, &steps, now).unwrap();
        assert!((tracked - applied.entropy_bits().unwrap()).abs() < 1e-9);
    }

    #[test]
    fn tracker_rejects_unknown_replica_and_config() {
        let assignment = Assignment::round_robin(&space(3), 3, VotingPower::new(1)).unwrap();
        let mut tracker = RotationEntropyTracker::new(&assignment);
        let bad_replica = RotationStep {
            at: SimTime::ZERO,
            replica: ReplicaId::new(99),
            to_config: 0,
        };
        assert!(tracker.apply(&bad_replica).is_err());
        let bad_config = RotationStep {
            at: SimTime::ZERO,
            replica: ReplicaId::new(0),
            to_config: 17,
        };
        assert!(tracker.apply(&bad_config).is_err());
        // Errors do not corrupt the tracked state.
        assert!((tracker.entropy_bits() - assignment.entropy_bits().unwrap()).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "period must be positive")]
    fn zero_period_rejected() {
        let _ = RotationPlanner::new(SimTime::ZERO, 1);
    }

    #[test]
    #[should_panic(expected = "stride must be non-zero")]
    fn zero_stride_rejected() {
        let _ = RotationPlanner::new(SimTime::from_secs(1), 0);
    }
}
