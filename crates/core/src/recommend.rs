//! The diversity recommender: reconfiguration moves toward κ-optimality.
//!
//! This is the permissionless analogue of Lazarus (§III-A): instead of a
//! central controller rotating OS images, the recommender computes which
//! replicas should migrate to which configurations to maximise the entropy
//! of the power-weighted configuration distribution, and by how much each
//! move helps. Operators can be incentivised to follow such recommendations
//! (e.g. via the two-tier weights) even without central control.

use fi_config::Assignment;
use fi_types::ReplicaId;
use serde::{Deserialize, Serialize};

/// One suggested migration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Recommendation {
    /// Which replica should move.
    pub replica: ReplicaId,
    /// Its current configuration index.
    pub from_config: usize,
    /// The suggested configuration index.
    pub to_config: usize,
    /// Entropy (bits) after applying this and all previous moves.
    pub entropy_after: f64,
    /// Entropy gained by this single move.
    pub gain_bits: f64,
}

/// Computes greedy reconfiguration plans.
#[derive(Debug, Clone)]
pub struct Recommender {
    max_moves: usize,
    min_gain_bits: f64,
}

impl Recommender {
    /// A recommender that proposes at most `max_moves` migrations and stops
    /// early when the best remaining move gains less than `min_gain_bits`.
    #[must_use]
    pub fn new(max_moves: usize, min_gain_bits: f64) -> Self {
        Recommender {
            max_moves,
            min_gain_bits: min_gain_bits.max(0.0),
        }
    }

    /// Greedily plans migrations on a copy of `assignment`: at each step,
    /// move the replica whose reassignment yields the largest entropy gain.
    /// Returns the plan in application order (possibly empty if the
    /// assignment is already optimal).
    ///
    /// Every candidate move is scored in O(1) by
    /// [`fi_entropy::EntropyAccumulator::peek_move`] on a bucket accumulator
    /// seeded once from the assignment — the previous implementation cloned
    /// the whole assignment and rebuilt its distribution for each of the
    /// `replicas × configurations` trials per round.
    ///
    /// # Errors
    ///
    /// Returns [`fi_config::ConfigError`] if the assignment carries no
    /// voting power.
    pub fn plan(
        &self,
        assignment: &Assignment,
    ) -> Result<Vec<Recommendation>, fi_config::ConfigError> {
        // Validates the no-power error case exactly as before.
        assignment.entropy_bits()?;
        let mut acc = assignment.entropy_accumulator();
        let devices: Vec<(ReplicaId, usize, u64)> = assignment
            .entries()
            .iter()
            .map(|e| (e.replica, e.config, e.power.as_units()))
            .collect();
        Ok(self.greedy_moves(&mut acc, devices, assignment.space().len()))
    }

    /// Plans re-attestation moves over a sealed fleet snapshot: which
    /// attested devices should rotate to which *existing* measurement
    /// bucket to maximise the fleet's configuration entropy. The serving
    /// counterpart of [`plan`](Self::plan) — configuration indices in the
    /// returned [`Recommendation`]s are snapshot bucket positions
    /// ([`EpochSnapshot::buckets`](fi_fleet::EpochSnapshot::buckets)).
    ///
    /// The snapshot itself is never mutated (it is immutable by
    /// construction — the plan is advice for the *next* epoch's churn
    /// batch); the search runs on a clone of its canonical accumulator.
    #[must_use]
    pub fn plan_for_snapshot(&self, snapshot: &fi_fleet::EpochSnapshot) -> Vec<Recommendation> {
        let mut acc = snapshot.entropy_accumulator().clone();
        let k = acc.slots();
        if k < 2 {
            return Vec::new();
        }
        let attested_weight = snapshot.weights().attested();
        // (device, current bucket, effective power): only attested devices
        // can be steered between measurement buckets.
        let devices: Vec<(ReplicaId, usize, u64)> = snapshot
            .candidates()
            .iter()
            .filter(|c| c.attested())
            .map(|c| {
                (
                    c.replica(),
                    c.config(),
                    c.power().scaled(attested_weight).as_units(),
                )
            })
            .collect();
        self.greedy_moves(&mut acc, devices, k)
    }

    /// The shared greedy search both planners run: at each step, score
    /// every `(device, target configuration)` move in O(1) via
    /// [`fi_entropy::EntropyAccumulator::peek_move`], apply the best one,
    /// and stop at `max_moves`, below `min_gain_bits`, or when no move
    /// strictly helps.
    ///
    /// Baseline and trial entropies must come from the same formula (the
    /// accumulator's `log2 W − S/W`): mixing in the batch `−Σ p·log p`
    /// value here can differ by ~1e-15 and let a mathematically neutral
    /// move sneak past the spurious-gain gate.
    fn greedy_moves(
        &self,
        acc: &mut fi_entropy::EntropyAccumulator,
        mut devices: Vec<(ReplicaId, usize, u64)>,
        k: usize,
    ) -> Vec<Recommendation> {
        let mut entropy = acc.entropy_bits();
        let mut plan = Vec::new();
        for _ in 0..self.max_moves {
            let mut best: Option<(usize, usize, f64)> = None;
            for (i, &(_, current, units)) in devices.iter().enumerate() {
                for target in 0..k {
                    if target == current {
                        continue;
                    }
                    let h = acc.peek_move(current, target, units);
                    let better = match best {
                        None => h > entropy,
                        Some((_, _, best_h)) => h > best_h,
                    };
                    if better {
                        best = Some((i, target, h));
                    }
                }
            }
            let Some((i, to_config, h)) = best else {
                break;
            };
            let gain = h - entropy;
            if gain < self.min_gain_bits || gain <= 1e-12 {
                break;
            }
            let (replica, from_config, units) = devices[i];
            acc.apply_move(from_config, to_config, units);
            devices[i].1 = to_config;
            entropy = h;
            plan.push(Recommendation {
                replica,
                from_config,
                to_config,
                entropy_after: h,
                gain_bits: gain,
            });
        }
        plan
    }

    /// Applies a plan to an assignment in place.
    ///
    /// # Errors
    ///
    /// Returns [`fi_config::ConfigError`] if a move references an unknown
    /// replica or configuration.
    pub fn apply(
        assignment: &mut Assignment,
        plan: &[Recommendation],
    ) -> Result<(), fi_config::ConfigError> {
        for rec in plan {
            assignment.reassign(rec.replica, rec.to_config)?;
        }
        Ok(())
    }
}

impl Default for Recommender {
    /// Up to 16 moves, any positive gain.
    fn default() -> Self {
        Recommender::new(16, 0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fi_config::prelude::*;

    fn space(k: usize) -> ConfigurationSpace {
        ConfigurationSpace::cartesian(&[catalog::operating_systems()[..k].to_vec()]).unwrap()
    }

    #[test]
    fn monoculture_gets_fixed() {
        let assignment = Assignment::monoculture(&space(4), 0, 8, VotingPower::new(10)).unwrap();
        let plan = Recommender::default().plan(&assignment).unwrap();
        assert!(!plan.is_empty());
        let mut fixed = assignment.clone();
        Recommender::apply(&mut fixed, &plan).unwrap();
        // 8 replicas over 4 configs, equal power: reaches 2 bits.
        assert!(
            (fixed.entropy_bits().unwrap() - 2.0).abs() < 1e-9,
            "plan: {plan:?}"
        );
    }

    #[test]
    fn plan_gains_are_monotone_and_positive() {
        let assignment = Assignment::monoculture(&space(4), 0, 8, VotingPower::new(10)).unwrap();
        let plan = Recommender::default().plan(&assignment).unwrap();
        for rec in &plan {
            assert!(rec.gain_bits > 0.0);
        }
        // entropy_after is non-decreasing along the plan.
        for w in plan.windows(2) {
            assert!(w[1].entropy_after >= w[0].entropy_after);
        }
    }

    #[test]
    fn optimal_assignment_needs_no_moves() {
        let assignment = Assignment::round_robin(&space(4), 8, VotingPower::new(10)).unwrap();
        let plan = Recommender::default().plan(&assignment).unwrap();
        assert!(plan.is_empty());
    }

    #[test]
    fn max_moves_caps_plan_length() {
        let assignment = Assignment::monoculture(&space(4), 0, 12, VotingPower::new(10)).unwrap();
        let plan = Recommender::new(2, 0.0).plan(&assignment).unwrap();
        assert!(plan.len() <= 2);
    }

    #[test]
    fn min_gain_threshold_stops_early() {
        let assignment = Assignment::monoculture(&space(4), 0, 8, VotingPower::new(10)).unwrap();
        let all = Recommender::new(32, 0.0).plan(&assignment).unwrap();
        let picky = Recommender::new(32, 0.5).plan(&assignment).unwrap();
        assert!(picky.len() <= all.len());
        assert!(picky.iter().all(|r| r.gain_bits >= 0.5));
    }

    #[test]
    fn snapshot_plan_fixes_a_skewed_fleet() {
        use fi_attest::{AttestedRegistry, ChurnOp, TwoTierWeights};
        use fi_fleet::EpochSnapshot;
        use fi_types::sha256;

        // 6 devices piled onto cfg-a, 1 on cfg-b: steering devices toward
        // cfg-b must raise entropy toward the 2-bucket optimum.
        let mut reg = AttestedRegistry::new(TwoTierWeights::flat());
        for i in 0..6u64 {
            reg.apply(&ChurnOp::attest(
                ReplicaId::new(i),
                sha256(b"cfg-a"),
                VotingPower::new(100),
            ));
        }
        reg.apply(&ChurnOp::attest(
            ReplicaId::new(6),
            sha256(b"cfg-b"),
            VotingPower::new(100),
        ));
        let snapshot = EpochSnapshot::from_registry(&reg, 1);
        let before = snapshot.entropy_bits(false).unwrap();
        let plan = Recommender::default().plan_for_snapshot(&snapshot);
        assert!(!plan.is_empty());
        for rec in &plan {
            assert!(rec.gain_bits > 0.0);
            assert!(rec.to_config < snapshot.buckets().len());
        }
        let after = plan.last().unwrap().entropy_after;
        assert!(after > before);
        // 700 units over two buckets: the optimum is ~log2(2) with a 400/300
        // split being the closest integer-device partition.
        assert!(after > 0.98, "entropy_after = {after}");
        // The snapshot itself is untouched.
        assert_eq!(snapshot.entropy_bits(false).unwrap(), before);
    }

    #[test]
    fn snapshot_plan_on_balanced_or_degenerate_fleets_is_empty() {
        use fi_attest::{AttestedRegistry, ChurnOp, TwoTierWeights};
        use fi_fleet::EpochSnapshot;
        use fi_types::sha256;

        // Already balanced: no move helps.
        let mut reg = AttestedRegistry::new(TwoTierWeights::flat());
        for i in 0..4u64 {
            reg.apply(&ChurnOp::attest(
                ReplicaId::new(i),
                sha256(format!("cfg-{i}").as_bytes()),
                VotingPower::new(100),
            ));
        }
        let snapshot = EpochSnapshot::from_registry(&reg, 1);
        assert!(Recommender::default()
            .plan_for_snapshot(&snapshot)
            .is_empty());
        // A single bucket (or an empty fleet) has nowhere to move to.
        let mut mono = AttestedRegistry::new(TwoTierWeights::flat());
        mono.apply(&ChurnOp::attest(
            ReplicaId::new(0),
            sha256(b"cfg-a"),
            VotingPower::new(100),
        ));
        assert!(Recommender::default()
            .plan_for_snapshot(&EpochSnapshot::from_registry(&mono, 1))
            .is_empty());
        assert!(Recommender::default()
            .plan_for_snapshot(&EpochSnapshot::empty(TwoTierWeights::flat()))
            .is_empty());
    }

    #[test]
    fn plan_respects_power_weighting() {
        // One whale on config 0, dust elsewhere: moving the whale is the
        // single best move only if it helps entropy; the recommender should
        // strictly improve the weighted entropy either way.
        let s = space(3);
        let powers = [
            VotingPower::new(700),
            VotingPower::new(100),
            VotingPower::new(100),
            VotingPower::new(100),
        ];
        let assignment = Assignment::with_powers(&s, &powers).unwrap();
        let before = assignment.entropy_bits().unwrap();
        let plan = Recommender::default().plan(&assignment).unwrap();
        if let Some(last) = plan.last() {
            assert!(last.entropy_after > before);
        }
    }
}
