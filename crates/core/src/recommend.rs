//! The diversity recommender: reconfiguration moves toward κ-optimality.
//!
//! This is the permissionless analogue of Lazarus (§III-A): instead of a
//! central controller rotating OS images, the recommender computes which
//! replicas should migrate to which configurations to maximise the entropy
//! of the power-weighted configuration distribution, and by how much each
//! move helps. Operators can be incentivised to follow such recommendations
//! (e.g. via the two-tier weights) even without central control.

use fi_config::Assignment;
use fi_types::ReplicaId;
use serde::{Deserialize, Serialize};

/// One suggested migration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Recommendation {
    /// Which replica should move.
    pub replica: ReplicaId,
    /// Its current configuration index.
    pub from_config: usize,
    /// The suggested configuration index.
    pub to_config: usize,
    /// Entropy (bits) after applying this and all previous moves.
    pub entropy_after: f64,
    /// Entropy gained by this single move.
    pub gain_bits: f64,
}

/// Computes greedy reconfiguration plans.
#[derive(Debug, Clone)]
pub struct Recommender {
    max_moves: usize,
    min_gain_bits: f64,
}

impl Recommender {
    /// A recommender that proposes at most `max_moves` migrations and stops
    /// early when the best remaining move gains less than `min_gain_bits`.
    #[must_use]
    pub fn new(max_moves: usize, min_gain_bits: f64) -> Self {
        Recommender {
            max_moves,
            min_gain_bits: min_gain_bits.max(0.0),
        }
    }

    /// Greedily plans migrations on a copy of `assignment`: at each step,
    /// move the replica whose reassignment yields the largest entropy gain.
    /// Returns the plan in application order (possibly empty if the
    /// assignment is already optimal).
    ///
    /// Every candidate move is scored in O(1) by
    /// [`fi_entropy::EntropyAccumulator::peek_move`] on a bucket accumulator
    /// seeded once from the assignment — the previous implementation cloned
    /// the whole assignment and rebuilt its distribution for each of the
    /// `replicas × configurations` trials per round.
    ///
    /// # Errors
    ///
    /// Returns [`fi_config::ConfigError`] if the assignment carries no
    /// voting power.
    pub fn plan(
        &self,
        assignment: &Assignment,
    ) -> Result<Vec<Recommendation>, fi_config::ConfigError> {
        let mut working = assignment.clone();
        // Validates the no-power error case exactly as before.
        working.entropy_bits()?;
        let mut acc = working.entropy_accumulator();
        // Baseline and trial entropies must come from the same formula
        // (the accumulator's log2 W − S/W): mixing in the batch −Σ p·log p
        // value here can differ by ~1e-15 and let a mathematically neutral
        // move sneak past the spurious-gain gate below.
        let mut entropy = acc.entropy_bits();
        let k = working.space().len();
        let mut plan = Vec::new();

        for _ in 0..self.max_moves {
            let mut best: Option<(ReplicaId, usize, usize, f64)> = None;
            for e in working.entries() {
                let (replica, current, units) = (e.replica, e.config, e.power.as_units());
                for target in 0..k {
                    if target == current {
                        continue;
                    }
                    let h = acc.peek_move(current, target, units);
                    let better = match best {
                        None => h > entropy,
                        Some((_, _, _, best_h)) => h > best_h,
                    };
                    if better {
                        best = Some((replica, current, target, h));
                    }
                }
            }
            let Some((replica, from_config, to_config, h)) = best else {
                break;
            };
            let gain = h - entropy;
            if gain < self.min_gain_bits || gain <= 1e-12 {
                break;
            }
            let moved = working
                .power_of(replica)
                .expect("replica came from the working entries");
            working.reassign(replica, to_config)?;
            acc.apply_move(from_config, to_config, moved.as_units());
            entropy = h;
            plan.push(Recommendation {
                replica,
                from_config,
                to_config,
                entropy_after: h,
                gain_bits: gain,
            });
        }
        Ok(plan)
    }

    /// Applies a plan to an assignment in place.
    ///
    /// # Errors
    ///
    /// Returns [`fi_config::ConfigError`] if a move references an unknown
    /// replica or configuration.
    pub fn apply(
        assignment: &mut Assignment,
        plan: &[Recommendation],
    ) -> Result<(), fi_config::ConfigError> {
        for rec in plan {
            assignment.reassign(rec.replica, rec.to_config)?;
        }
        Ok(())
    }
}

impl Default for Recommender {
    /// Up to 16 moves, any positive gain.
    fn default() -> Self {
        Recommender::new(16, 0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fi_config::prelude::*;

    fn space(k: usize) -> ConfigurationSpace {
        ConfigurationSpace::cartesian(&[catalog::operating_systems()[..k].to_vec()]).unwrap()
    }

    #[test]
    fn monoculture_gets_fixed() {
        let assignment = Assignment::monoculture(&space(4), 0, 8, VotingPower::new(10)).unwrap();
        let plan = Recommender::default().plan(&assignment).unwrap();
        assert!(!plan.is_empty());
        let mut fixed = assignment.clone();
        Recommender::apply(&mut fixed, &plan).unwrap();
        // 8 replicas over 4 configs, equal power: reaches 2 bits.
        assert!(
            (fixed.entropy_bits().unwrap() - 2.0).abs() < 1e-9,
            "plan: {plan:?}"
        );
    }

    #[test]
    fn plan_gains_are_monotone_and_positive() {
        let assignment = Assignment::monoculture(&space(4), 0, 8, VotingPower::new(10)).unwrap();
        let plan = Recommender::default().plan(&assignment).unwrap();
        for rec in &plan {
            assert!(rec.gain_bits > 0.0);
        }
        // entropy_after is non-decreasing along the plan.
        for w in plan.windows(2) {
            assert!(w[1].entropy_after >= w[0].entropy_after);
        }
    }

    #[test]
    fn optimal_assignment_needs_no_moves() {
        let assignment = Assignment::round_robin(&space(4), 8, VotingPower::new(10)).unwrap();
        let plan = Recommender::default().plan(&assignment).unwrap();
        assert!(plan.is_empty());
    }

    #[test]
    fn max_moves_caps_plan_length() {
        let assignment = Assignment::monoculture(&space(4), 0, 12, VotingPower::new(10)).unwrap();
        let plan = Recommender::new(2, 0.0).plan(&assignment).unwrap();
        assert!(plan.len() <= 2);
    }

    #[test]
    fn min_gain_threshold_stops_early() {
        let assignment = Assignment::monoculture(&space(4), 0, 8, VotingPower::new(10)).unwrap();
        let all = Recommender::new(32, 0.0).plan(&assignment).unwrap();
        let picky = Recommender::new(32, 0.5).plan(&assignment).unwrap();
        assert!(picky.len() <= all.len());
        assert!(picky.iter().all(|r| r.gain_bits >= 0.5));
    }

    #[test]
    fn plan_respects_power_weighting() {
        // One whale on config 0, dust elsewhere: moving the whale is the
        // single best move only if it helps entropy; the recommender should
        // strictly improve the weighted entropy either way.
        let s = space(3);
        let powers = [
            VotingPower::new(700),
            VotingPower::new(100),
            VotingPower::new(100),
            VotingPower::new(100),
        ];
        let assignment = Assignment::with_powers(&s, &powers).unwrap();
        let before = assignment.entropy_bits().unwrap();
        let plan = Recommender::default().plan(&assignment).unwrap();
        if let Some(last) = plan.last() {
            assert!(last.entropy_after > before);
        }
    }
}
