//! The diversity monitor: configuration discovery → entropy report.

use fi_attest::{AttestedRegistry, Quote, TwoTierWeights, Verifier};
use fi_entropy::optimal::KappaOptimality;
use fi_entropy::renyi::min_entropy_bits;
use fi_entropy::shannon::{effective_configurations, evenness};
use fi_fleet::EpochSnapshot;
use fi_types::{ReplicaId, SimTime, VotingPower};
use serde::{Deserialize, Serialize};

use crate::error::CoreError;

/// Discovers and quantifies replica diversity from attestation quotes
/// (paper §III-B + §IV in one object).
///
/// The monitor issues per-replica challenge nonces, verifies quotes through
/// its [`Verifier`], and keeps an [`AttestedRegistry`] from which it derives
/// the diversity report.
#[derive(Debug)]
pub struct DiversityMonitor {
    verifier: Verifier,
    registry: AttestedRegistry,
    next_nonce: u64,
}

impl DiversityMonitor {
    /// Creates a monitor with the given verifier and tier weights.
    #[must_use]
    pub fn new(verifier: Verifier, weights: TwoTierWeights) -> Self {
        DiversityMonitor {
            verifier,
            registry: AttestedRegistry::new(weights),
            next_nonce: 1,
        }
    }

    /// Issues a fresh challenge nonce for a replica's next attestation.
    pub fn challenge(&mut self) -> u64 {
        let nonce = self.next_nonce;
        self.next_nonce += 1;
        nonce
    }

    /// Ingests a quote answering `nonce`, registering the replica as
    /// attested with `power`.
    ///
    /// # Errors
    ///
    /// Propagates verification failures ([`fi_attest::AttestError`]).
    pub fn ingest_quote(
        &mut self,
        replica: ReplicaId,
        quote: &Quote,
        nonce: u64,
        now: SimTime,
        power: VotingPower,
    ) -> Result<(), CoreError> {
        self.registry
            .register_attested(replica, quote, &self.verifier, now, Some(nonce), power)?;
        Ok(())
    }

    /// Registers a replica that declined attestation (unattested tier).
    pub fn ingest_unattested(&mut self, replica: ReplicaId, power: VotingPower) {
        self.registry.register_unattested(replica, power);
    }

    /// The underlying registry.
    #[must_use]
    pub fn registry(&self) -> &AttestedRegistry {
        &self.registry
    }

    /// Mutable verifier access (revocations, policy updates).
    pub fn verifier_mut(&mut self) -> &mut Verifier {
        &mut self.verifier
    }

    /// The Shannon entropy (bits) of the current configuration
    /// distribution, straight off the registry's incrementally maintained
    /// accumulator — O(1), no distribution rebuild. This is the
    /// continuous-monitoring fast path; use [`report`](Self::report) for the
    /// full metric set.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Entropy`] when no power is registered.
    pub fn entropy_bits(&self, include_unattested: bool) -> Result<f64, CoreError> {
        Ok(self.registry.entropy_bits(include_unattested)?)
    }

    /// Produces the diversity report. With `include_unattested`, all
    /// unattested power is counted as one opaque configuration (the
    /// pessimistic reading).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Entropy`] when no power is registered.
    pub fn report(&self, include_unattested: bool) -> Result<DiversityReport, CoreError> {
        let dist = self.registry.distribution(include_unattested)?;
        Ok(DiversityReport::from_parts(
            &dist,
            self.registry.len(),
            self.registry.total_effective_power(),
            self.registry.entropy_bits(include_unattested)?,
        ))
    }
}

impl DiversityReport {
    /// Derives the full diversity report from a sealed fleet snapshot —
    /// the serving-layer counterpart of [`DiversityMonitor::report`]: same
    /// metric set, computed lock-free from an immutable [`EpochSnapshot`]
    /// instead of the live registry. Because the snapshot's distribution
    /// mirrors the registry's row order exactly, a report taken through
    /// either path over the same fleet content agrees on every batch
    /// metric bit-for-bit.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Entropy`] when the snapshot holds no power.
    pub fn from_snapshot(
        snapshot: &EpochSnapshot,
        include_unattested: bool,
    ) -> Result<DiversityReport, CoreError> {
        let dist = snapshot.distribution(include_unattested)?;
        Ok(DiversityReport::from_parts(
            &dist,
            snapshot.device_count(),
            snapshot.total_effective_power(),
            snapshot.entropy_bits(include_unattested)?,
        ))
    }

    /// [`from_snapshot`](Self::from_snapshot) over a fleet reader's cached
    /// [`SnapshotHandle`](fi_fleet::SnapshotHandle) — the shared-nothing
    /// monitoring entry point. The handle revalidates against the fleet's
    /// epoch stamp with one relaxed load (no lock, no `Arc` clone in
    /// steady state), so a monitoring thread polling reports between
    /// seals touches no shared cache line at all; the report itself is
    /// derived from whichever snapshot the handle currently serves, with
    /// metrics bit-identical to [`from_snapshot`] on that same snapshot.
    ///
    /// # Errors
    ///
    /// As [`from_snapshot`](Self::from_snapshot).
    pub fn from_handle(
        handle: &mut fi_fleet::SnapshotHandle<'_>,
        include_unattested: bool,
    ) -> Result<DiversityReport, CoreError> {
        Self::from_snapshot(handle.get(), include_unattested)
    }

    /// The shared constructor both report paths use: every distribution-
    /// derived metric comes from one place, so the registry and snapshot
    /// paths cannot drift.
    fn from_parts(
        dist: &fi_entropy::Distribution,
        replicas: usize,
        total_effective_power: VotingPower,
        entropy_bits: f64,
    ) -> DiversityReport {
        let optimality = KappaOptimality::check(dist, 1e-9);
        DiversityReport {
            replicas,
            configurations: dist.support_size(),
            total_effective_power,
            entropy_bits,
            min_entropy_bits: min_entropy_bits(dist),
            effective_configurations: effective_configurations(dist),
            evenness: evenness(dist),
            kappa: optimality.kappa(),
            kappa_optimal: optimality.is_optimal(),
            entropy_deficit_bits: optimality.entropy_deficit_bits(),
            worst_configuration_share: dist.max_probability(),
        }
    }
}

/// A snapshot of the system's measured diversity (§IV quantities).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DiversityReport {
    /// Registered replicas (both tiers).
    pub replicas: usize,
    /// Distinct configurations in use.
    pub configurations: usize,
    /// Total effective (tier-weighted) voting power.
    pub total_effective_power: VotingPower,
    /// Shannon entropy `H(p)` in bits.
    pub entropy_bits: f64,
    /// Min-entropy `H_∞(p)` in bits (worst-case single configuration).
    pub min_entropy_bits: f64,
    /// Effective number of configurations `2^H`.
    pub effective_configurations: f64,
    /// Evenness `H / log2 κ ∈ [0, 1]`.
    pub evenness: f64,
    /// Realised κ (support size).
    pub kappa: usize,
    /// Whether Definition 1 (κ-optimal fault independence) holds.
    pub kappa_optimal: bool,
    /// `log2 κ − H`: how far from κ-optimal.
    pub entropy_deficit_bits: f64,
    /// The dominant configuration's power share (what one zero-day takes).
    pub worst_configuration_share: f64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use fi_attest::{AttestationPolicy, DeviceKind, TrustedDevice};
    use fi_types::{sha256, KeyPair};

    fn monitor_with_roots(devices: &[&TrustedDevice]) -> DiversityMonitor {
        let mut verifier = Verifier::new(AttestationPolicy::discovery());
        for d in devices {
            verifier.trust_endorsement(d.endorsement_key());
        }
        DiversityMonitor::new(verifier, TwoTierWeights::flat())
    }

    fn attest_cycle(
        monitor: &mut DiversityMonitor,
        device: &TrustedDevice,
        replica: u64,
        measurement: &[u8],
        power: u64,
    ) {
        let nonce = monitor.challenge();
        let aik = device.create_aik(&format!("aik-{replica}"));
        let quote = aik.quote(
            sha256(measurement),
            nonce,
            KeyPair::from_seed(replica).public_key(),
            SimTime::ZERO,
        );
        monitor
            .ingest_quote(
                ReplicaId::new(replica),
                &quote,
                nonce,
                SimTime::ZERO,
                VotingPower::new(power),
            )
            .unwrap();
    }

    #[test]
    fn challenges_are_unique() {
        let device = TrustedDevice::new(DeviceKind::Tpm20, 0);
        let mut m = monitor_with_roots(&[&device]);
        let a = m.challenge();
        let b = m.challenge();
        assert_ne!(a, b);
    }

    #[test]
    fn full_pipeline_uniform_is_kappa_optimal() {
        let device = TrustedDevice::new(DeviceKind::Tpm20, 0);
        let mut m = monitor_with_roots(&[&device]);
        for i in 0..4u64 {
            attest_cycle(&mut m, &device, i, format!("cfg-{i}").as_bytes(), 100);
        }
        let report = m.report(false).unwrap();
        assert_eq!(report.replicas, 4);
        assert_eq!(report.configurations, 4);
        assert!(report.kappa_optimal);
        assert!((report.entropy_bits - 2.0).abs() < 1e-12);
        assert!((report.effective_configurations - 4.0).abs() < 1e-9);
        assert!((report.evenness - 1.0).abs() < 1e-12);
        assert!((report.worst_configuration_share - 0.25).abs() < 1e-12);
        assert!(report.entropy_deficit_bits < 1e-12);
    }

    #[test]
    fn skewed_power_reduces_entropy() {
        let device = TrustedDevice::new(DeviceKind::Tpm20, 0);
        let mut m = monitor_with_roots(&[&device]);
        attest_cycle(&mut m, &device, 0, b"cfg-a", 900);
        attest_cycle(&mut m, &device, 1, b"cfg-b", 100);
        let report = m.report(false).unwrap();
        assert!(!report.kappa_optimal);
        assert!(report.entropy_bits < 1.0);
        assert!(report.entropy_deficit_bits > 0.0);
        assert!((report.worst_configuration_share - 0.9).abs() < 1e-12);
    }

    #[test]
    fn wrong_nonce_is_rejected() {
        let device = TrustedDevice::new(DeviceKind::Tpm20, 0);
        let mut m = monitor_with_roots(&[&device]);
        let nonce = m.challenge();
        let aik = device.create_aik("aik");
        let quote = aik.quote(
            sha256(b"cfg"),
            nonce + 999,
            KeyPair::from_seed(0).public_key(),
            SimTime::ZERO,
        );
        let err = m
            .ingest_quote(
                ReplicaId::new(0),
                &quote,
                nonce,
                SimTime::ZERO,
                VotingPower::new(1),
            )
            .unwrap_err();
        assert!(matches!(err, CoreError::Attest(_)));
        assert!(m.report(false).is_err(), "nothing registered");
    }

    #[test]
    fn fast_entropy_matches_report_entropy() {
        let device = TrustedDevice::new(DeviceKind::Tpm20, 0);
        let mut m = monitor_with_roots(&[&device]);
        attest_cycle(&mut m, &device, 0, b"cfg-a", 700);
        attest_cycle(&mut m, &device, 1, b"cfg-b", 200);
        m.ingest_unattested(ReplicaId::new(2), VotingPower::new(100));
        for include in [false, true] {
            let fast = m.entropy_bits(include).unwrap();
            let report = m.report(include).unwrap();
            assert_eq!(fast.to_bits(), report.entropy_bits.to_bits());
            assert!(!fast.is_sign_negative());
        }
        let empty = monitor_with_roots(&[&device]);
        assert!(empty.entropy_bits(false).is_err());
    }

    #[test]
    fn unattested_bucket_changes_report() {
        let device = TrustedDevice::new(DeviceKind::Tpm20, 0);
        let mut m = monitor_with_roots(&[&device]);
        attest_cycle(&mut m, &device, 0, b"cfg-a", 100);
        m.ingest_unattested(ReplicaId::new(1), VotingPower::new(100));
        let without = m.report(false).unwrap();
        let with = m.report(true).unwrap();
        assert_eq!(without.configurations, 1);
        assert_eq!(with.configurations, 2);
        assert!(with.entropy_bits > without.entropy_bits);
        assert_eq!(with.replicas, 2);
    }

    #[test]
    fn snapshot_report_matches_registry_report() {
        let device = TrustedDevice::new(DeviceKind::Tpm20, 0);
        let mut m = monitor_with_roots(&[&device]);
        attest_cycle(&mut m, &device, 0, b"cfg-a", 700);
        attest_cycle(&mut m, &device, 1, b"cfg-b", 200);
        attest_cycle(&mut m, &device, 2, b"cfg-a", 50);
        m.ingest_unattested(ReplicaId::new(3), VotingPower::new(100));
        let snapshot = fi_fleet::EpochSnapshot::from_registry(m.registry(), 1);
        for include in [false, true] {
            let via_registry = m.report(include).unwrap();
            let via_snapshot = DiversityReport::from_snapshot(&snapshot, include).unwrap();
            // Batch metrics come from bit-identical distributions; only the
            // O(1) entropy read differs (canonical vs history-accumulated),
            // within the engine's drift bound.
            assert!(
                (via_registry.entropy_bits - via_snapshot.entropy_bits).abs() < 1e-9,
                "include={include}"
            );
            assert_eq!(via_registry.replicas, via_snapshot.replicas);
            assert_eq!(via_registry.configurations, via_snapshot.configurations);
            assert_eq!(
                via_registry.total_effective_power,
                via_snapshot.total_effective_power
            );
            assert_eq!(
                via_registry.min_entropy_bits.to_bits(),
                via_snapshot.min_entropy_bits.to_bits()
            );
            assert_eq!(
                via_registry.evenness.to_bits(),
                via_snapshot.evenness.to_bits()
            );
            assert_eq!(via_registry.kappa, via_snapshot.kappa);
            assert_eq!(via_registry.kappa_optimal, via_snapshot.kappa_optimal);
            assert_eq!(
                via_registry.worst_configuration_share.to_bits(),
                via_snapshot.worst_configuration_share.to_bits()
            );
        }
        let empty = fi_fleet::EpochSnapshot::empty(TwoTierWeights::flat());
        assert!(DiversityReport::from_snapshot(&empty, false).is_err());
    }

    #[test]
    fn handle_report_matches_snapshot_report_across_seals() {
        use fi_attest::ChurnOp;
        use fi_fleet::ShardedFleet;
        // Reports through a cached reader handle are bit-identical to
        // reports over the fleet's served snapshot, and the handle tracks
        // each seal without being recreated.
        let fleet = ShardedFleet::new(4, TwoTierWeights::flat());
        let mut handle = fleet.reader();
        assert!(DiversityReport::from_handle(&mut handle, true).is_err());
        for round in 0..3u64 {
            let batch: Vec<ChurnOp> = (0..12)
                .map(|i| {
                    ChurnOp::attest(
                        ReplicaId::new(round * 12 + i),
                        sha256(format!("cfg-{}", i % 4).as_bytes()),
                        VotingPower::new(50 + i),
                    )
                })
                .collect();
            fleet.ingest_batch(&batch);
            fleet.seal_epoch();
            for include in [false, true] {
                let via_handle = DiversityReport::from_handle(&mut handle, include).unwrap();
                let via_snapshot =
                    DiversityReport::from_snapshot(&fleet.snapshot(), include).unwrap();
                assert_eq!(via_handle, via_snapshot);
            }
            assert_eq!(handle.cached_epoch(), round + 1);
        }
    }

    #[test]
    fn revocation_through_verifier_mut() {
        let device = TrustedDevice::new(DeviceKind::Tpm20, 0);
        let mut m = monitor_with_roots(&[&device]);
        let aik = device.create_aik("aik");
        m.verifier_mut().revoke(aik.public_key());
        let nonce = m.challenge();
        let quote = aik.quote(
            sha256(b"cfg"),
            nonce,
            KeyPair::from_seed(0).public_key(),
            SimTime::ZERO,
        );
        assert!(m
            .ingest_quote(
                ReplicaId::new(0),
                &quote,
                nonce,
                SimTime::ZERO,
                VotingPower::new(1)
            )
            .is_err());
    }
}
