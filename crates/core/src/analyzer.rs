//! The resilience analyzer: assignment + vulnerabilities → safety verdicts.

use fi_config::closure::{component_exposure_ranking, fault_summary, ComponentExposure};
use fi_config::window::{exposure_curve, ExposurePoint, PatchRollout};
use fi_config::{Assignment, VulnerabilityDb};
use fi_types::{SimTime, VotingPower};
use serde::{Deserialize, Serialize};

/// Evaluates the paper's safety condition `f ≥ Σ_i f^i_t` (§II-C) and the
/// structural exposure of an assignment.
#[derive(Debug, Clone)]
pub struct ResilienceAnalyzer {
    assignment: Assignment,
    db: VulnerabilityDb,
}

impl ResilienceAnalyzer {
    /// Creates an analyzer over an assignment and a vulnerability database.
    #[must_use]
    pub fn new(assignment: Assignment, db: VulnerabilityDb) -> Self {
        ResilienceAnalyzer { assignment, db }
    }

    /// The assignment under analysis.
    #[must_use]
    pub fn assignment(&self) -> &Assignment {
        &self.assignment
    }

    /// The vulnerability database.
    #[must_use]
    pub fn database(&self) -> &VulnerabilityDb {
        &self.db
    }

    /// Analyzes the fault picture at instant `t`.
    #[must_use]
    pub fn analyze_at(&self, t: SimTime) -> ResilienceReport {
        let summary = fault_summary(&self.assignment, &self.db, t);
        let total = self.assignment.total_power();
        // The classic BFT bound: strictly less than a third of the power.
        let f_bound = VotingPower::new(total.as_units().saturating_sub(1) / 3);
        ResilienceReport {
            at: t,
            total_power: total,
            active_vulnerabilities: summary.per_vulnerability().len(),
            sum_compromised: summary.sum_power(),
            union_compromised: summary.union_power(),
            worst_single_vulnerability: summary.worst_single(),
            compromised_share: summary.compromised_share(),
            f_bound,
            safety_condition_holds: summary.safety_holds(f_bound),
            compromised_replicas: summary.union_replicas().len(),
        }
    }

    /// Analyzes a sweep of instants (for exposure-over-time plots).
    #[must_use]
    pub fn analyze_sweep(&self, times: &[SimTime]) -> Vec<ResilienceReport> {
        times.iter().map(|&t| self.analyze_at(t)).collect()
    }

    /// The structural single-product exposure ranking (no time component):
    /// which product concentrates the most voting power.
    #[must_use]
    pub fn exposure_ranking(&self) -> Vec<ComponentExposure> {
        component_exposure_ranking(&self.assignment)
    }

    /// Exposure curve under a patch-rollout model (experiment E9).
    #[must_use]
    pub fn exposure_curve(&self, rollout: &PatchRollout, times: &[SimTime]) -> Vec<ExposurePoint> {
        exposure_curve(&self.assignment, &self.db, rollout, times)
    }

    /// Entropy (bits) of the assignment's power-weighted configuration
    /// distribution.
    ///
    /// # Errors
    ///
    /// Returns [`fi_config::ConfigError`] if the assignment carries no
    /// power.
    pub fn entropy_bits(&self) -> Result<f64, fi_config::ConfigError> {
        self.assignment.entropy_bits()
    }
}

/// The fault picture at one instant.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ResilienceReport {
    /// The analyzed instant.
    pub at: SimTime,
    /// Total voting power `n_t`.
    pub total_power: VotingPower,
    /// `k_t`: vulnerabilities active at `t`.
    pub active_vulnerabilities: usize,
    /// The paper's `Σ_i f^i_t` (conservative; overlaps double-counted).
    pub sum_compromised: VotingPower,
    /// Power of the union of compromised replicas.
    pub union_compromised: VotingPower,
    /// The largest single `f^i_t`.
    pub worst_single_vulnerability: VotingPower,
    /// Union-compromised share of total power.
    pub compromised_share: f64,
    /// The BFT tolerance `f = ⌊(n − 1)/3⌋` in power units.
    pub f_bound: VotingPower,
    /// Whether `f ≥ Σ_i f^i_t` holds at `t`.
    pub safety_condition_holds: bool,
    /// Number of distinct compromised replicas.
    pub compromised_replicas: usize,
}

#[cfg(test)]
mod tests {
    use super::*;
    use fi_config::prelude::*;

    fn setup(diverse: bool) -> ResilienceAnalyzer {
        let space =
            ConfigurationSpace::cartesian(&[catalog::operating_systems()[..4].to_vec()]).unwrap();
        let assignment = if diverse {
            Assignment::round_robin(&space, 8, VotingPower::new(100)).unwrap()
        } else {
            Assignment::monoculture(&space, 0, 8, VotingPower::new(100)).unwrap()
        };
        let os = &catalog::operating_systems()[0];
        let mut db = VulnerabilityDb::new();
        db.add(
            Vulnerability::new(
                VulnId::new(0),
                "os-zero-day",
                ComponentSelector::product(os.kind(), os.name()),
                Severity::Critical,
            )
            .with_window(SimTime::from_secs(100), SimTime::from_secs(200)),
        );
        ResilienceAnalyzer::new(assignment, db)
    }

    #[test]
    fn diverse_assignment_survives_one_vuln() {
        let analyzer = setup(true);
        let report = analyzer.analyze_at(SimTime::from_secs(150));
        assert_eq!(report.active_vulnerabilities, 1);
        // 2 of 8 replicas share the vulnerable OS: 200 of 800 units.
        assert_eq!(report.sum_compromised, VotingPower::new(200));
        assert_eq!(report.union_compromised, VotingPower::new(200));
        assert_eq!(report.compromised_replicas, 2);
        // f = (800-1)/3 = 266 >= 200: safe.
        assert!(report.safety_condition_holds);
        assert!((report.compromised_share - 0.25).abs() < 1e-12);
    }

    #[test]
    fn monoculture_violates_safety_condition() {
        let analyzer = setup(false);
        let report = analyzer.analyze_at(SimTime::from_secs(150));
        assert_eq!(report.sum_compromised, VotingPower::new(800));
        assert!(!report.safety_condition_holds);
        assert_eq!(report.compromised_share, 1.0);
    }

    #[test]
    fn outside_window_nothing_is_compromised() {
        let analyzer = setup(false);
        for t in [
            SimTime::ZERO,
            SimTime::from_secs(99),
            SimTime::from_secs(200),
        ] {
            let report = analyzer.analyze_at(t);
            assert_eq!(report.active_vulnerabilities, 0);
            assert_eq!(report.sum_compromised, VotingPower::ZERO);
            assert!(report.safety_condition_holds);
        }
    }

    #[test]
    fn sweep_traces_the_window() {
        let analyzer = setup(true);
        let times: Vec<SimTime> = (0..6).map(|i| SimTime::from_secs(i * 50)).collect();
        let sweep = analyzer.analyze_sweep(&times);
        assert_eq!(sweep.len(), 6);
        let compromised: Vec<bool> = sweep.iter().map(|r| r.active_vulnerabilities > 0).collect();
        assert_eq!(compromised, vec![false, false, true, true, false, false]);
    }

    #[test]
    fn exposure_ranking_identifies_shared_os() {
        let analyzer = setup(false);
        let ranking = analyzer.exposure_ranking();
        assert_eq!(ranking[0].power, VotingPower::new(800));
        assert_eq!(ranking[0].replicas, 8);
        let diverse = setup(true);
        assert_eq!(diverse.exposure_ranking()[0].power, VotingPower::new(200));
    }

    #[test]
    fn exposure_curve_with_rollout_latency() {
        let analyzer = setup(true);
        let rollout = PatchRollout::new(SimTime::from_secs(50), SimTime::ZERO, 0);
        let times: Vec<SimTime> = (0..7).map(|i| SimTime::from_secs(i * 50)).collect();
        let curve = analyzer.exposure_curve(&rollout, &times);
        // Exposure persists to t=200+50 due to adoption latency.
        let at = |secs: u64| {
            curve
                .iter()
                .find(|p| p.time == SimTime::from_secs(secs))
                .unwrap()
                .exposed
        };
        assert_eq!(at(100), VotingPower::new(200));
        assert_eq!(at(200), VotingPower::new(200));
        assert_eq!(at(250), VotingPower::ZERO);
    }

    #[test]
    fn entropy_accessor() {
        assert!((setup(true).entropy_bits().unwrap() - 2.0).abs() < 1e-12);
        assert_eq!(setup(false).entropy_bits().unwrap(), 0.0);
    }
}
