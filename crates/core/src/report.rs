//! Human-readable rendering of reports.

use core::fmt;

use crate::analyzer::ResilienceReport;
use crate::monitor::DiversityReport;

impl fmt::Display for DiversityReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "diversity report")?;
        writeln!(f, "  replicas:                 {}", self.replicas)?;
        writeln!(f, "  configurations (kappa):   {}", self.kappa)?;
        writeln!(
            f,
            "  effective power:          {}",
            self.total_effective_power
        )?;
        writeln!(
            f,
            "  shannon entropy:          {:.4} bits",
            self.entropy_bits
        )?;
        writeln!(
            f,
            "  min-entropy:              {:.4} bits",
            self.min_entropy_bits
        )?;
        writeln!(
            f,
            "  effective configurations: {:.2}",
            self.effective_configurations
        )?;
        writeln!(f, "  evenness:                 {:.4}", self.evenness)?;
        writeln!(
            f,
            "  kappa-optimal (Def. 1):   {}",
            if self.kappa_optimal { "yes" } else { "no" }
        )?;
        writeln!(
            f,
            "  entropy deficit:          {:.4} bits",
            self.entropy_deficit_bits
        )?;
        write!(
            f,
            "  worst config share:       {:.2}%",
            self.worst_configuration_share * 100.0
        )
    }
}

impl fmt::Display for ResilienceReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "resilience report at {}", self.at)?;
        writeln!(f, "  total power n_t:          {}", self.total_power)?;
        writeln!(
            f,
            "  active vulnerabilities:   {}",
            self.active_vulnerabilities
        )?;
        writeln!(f, "  sum compromised (Σf^i_t): {}", self.sum_compromised)?;
        writeln!(f, "  union compromised:        {}", self.union_compromised)?;
        writeln!(
            f,
            "  worst single vuln:        {}",
            self.worst_single_vulnerability
        )?;
        writeln!(
            f,
            "  compromised share:        {:.2}%",
            self.compromised_share * 100.0
        )?;
        writeln!(f, "  f bound (⌊(n−1)/3⌋):      {}", self.f_bound)?;
        write!(
            f,
            "  safety f ≥ Σ f^i_t:       {}",
            if self.safety_condition_holds {
                "HOLDS"
            } else {
                "VIOLATED"
            }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fi_types::{SimTime, VotingPower};

    #[test]
    fn diversity_report_renders() {
        let report = DiversityReport {
            replicas: 4,
            configurations: 4,
            total_effective_power: VotingPower::new(400),
            entropy_bits: 2.0,
            min_entropy_bits: 2.0,
            effective_configurations: 4.0,
            evenness: 1.0,
            kappa: 4,
            kappa_optimal: true,
            entropy_deficit_bits: 0.0,
            worst_configuration_share: 0.25,
        };
        let s = report.to_string();
        assert!(s.contains("2.0000 bits"));
        assert!(s.contains("kappa-optimal (Def. 1):   yes"));
        assert!(s.contains("25.00%"));
    }

    #[test]
    fn resilience_report_renders_verdict() {
        let mut report = ResilienceReport {
            at: SimTime::from_secs(5),
            total_power: VotingPower::new(800),
            active_vulnerabilities: 1,
            sum_compromised: VotingPower::new(200),
            union_compromised: VotingPower::new(200),
            worst_single_vulnerability: VotingPower::new(200),
            compromised_share: 0.25,
            f_bound: VotingPower::new(266),
            safety_condition_holds: true,
            compromised_replicas: 2,
        };
        assert!(report.to_string().contains("HOLDS"));
        report.safety_condition_holds = false;
        assert!(report.to_string().contains("VIOLATED"));
    }
}
