//! The facade's error type: a sum over the workspace error types.

use core::fmt;

/// Any error the facade can surface.
#[derive(Debug)]
pub enum CoreError {
    /// Distribution/entropy failure.
    Entropy(fi_entropy::DistributionError),
    /// Configuration-model failure.
    Config(fi_config::ConfigError),
    /// Attestation failure.
    Attest(fi_attest::AttestError),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Entropy(e) => write!(f, "entropy error: {e}"),
            CoreError::Config(e) => write!(f, "configuration error: {e}"),
            CoreError::Attest(e) => write!(f, "attestation error: {e}"),
        }
    }
}

impl std::error::Error for CoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CoreError::Entropy(e) => Some(e),
            CoreError::Config(e) => Some(e),
            CoreError::Attest(e) => Some(e),
        }
    }
}

impl From<fi_entropy::DistributionError> for CoreError {
    fn from(e: fi_entropy::DistributionError) -> Self {
        CoreError::Entropy(e)
    }
}

impl From<fi_config::ConfigError> for CoreError {
    fn from(e: fi_config::ConfigError) -> Self {
        CoreError::Config(e)
    }
}

impl From<fi_attest::AttestError> for CoreError {
    fn from(e: fi_attest::AttestError) -> Self {
        CoreError::Attest(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::error::Error;

    #[test]
    fn wraps_all_sources() {
        let e: CoreError = fi_entropy::DistributionError::Empty.into();
        assert!(e.source().is_some());
        assert!(e.to_string().contains("entropy"));
        let e: CoreError = fi_config::ConfigError::EmptySpace.into();
        assert!(e.to_string().contains("configuration"));
        let e: CoreError = fi_attest::AttestError::BadSignature.into();
        assert!(e.to_string().contains("attestation"));
    }

    #[test]
    fn implements_std_error() {
        fn check<E: std::error::Error + Send + Sync + 'static>() {}
        check::<CoreError>();
    }
}
