//! Distribution trait and the two distributions the workspace samples from.

use core::borrow::Borrow;

use crate::RngCore;

/// Types that can produce values of `T` given a source of randomness.
pub trait Distribution<T> {
    /// Draw one sample.
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

impl<T, D: Distribution<T> + ?Sized> Distribution<T> for &D {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T {
        (**self).sample(rng)
    }
}

/// The "natural" distribution for a primitive: uniform over the full domain
/// for integers, uniform in `[0, 1)` for floats, fair coin for `bool`.
#[derive(Debug, Clone, Copy, Default)]
pub struct Standard;

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Distribution<$t> for Standard {
            fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Distribution<u128> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u128 {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl Distribution<bool> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Distribution<f64> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        // 53 high bits -> uniform in [0, 1), the standard conversion.
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Distribution<f32> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Error from [`WeightedIndex::new`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WeightedError {
    /// The weight list was empty.
    NoItem,
    /// A weight was negative, NaN, or the total was not positive and finite.
    InvalidWeight,
}

impl core::fmt::Display for WeightedError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            WeightedError::NoItem => write!(f, "no weights provided"),
            WeightedError::InvalidWeight => write!(f, "invalid weight"),
        }
    }
}

impl std::error::Error for WeightedError {}

/// Sample indices `0..n` proportionally to a list of `f64` weights, by
/// inverse-CDF over the cumulative weight vector.
#[derive(Debug, Clone, PartialEq)]
pub struct WeightedIndex {
    cumulative: Vec<f64>,
    total: f64,
}

impl WeightedIndex {
    /// Build from any iterator of weights borrowable as `f64`.
    ///
    /// # Errors
    ///
    /// [`WeightedError::NoItem`] for an empty list,
    /// [`WeightedError::InvalidWeight`] for negative/NaN weights or a
    /// non-positive total.
    pub fn new<I>(weights: I) -> Result<Self, WeightedError>
    where
        I: IntoIterator,
        I::Item: core::borrow::Borrow<f64>,
    {
        let mut cumulative = Vec::new();
        let mut total = 0.0f64;
        for w in weights {
            let w = *w.borrow();
            if !w.is_finite() || w < 0.0 {
                return Err(WeightedError::InvalidWeight);
            }
            total += w;
            cumulative.push(total);
        }
        if cumulative.is_empty() {
            return Err(WeightedError::NoItem);
        }
        if total <= 0.0 || !total.is_finite() {
            return Err(WeightedError::InvalidWeight);
        }
        Ok(WeightedIndex { cumulative, total })
    }
}

impl Distribution<usize> for WeightedIndex {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = Standard.sample(rng);
        let target = u * self.total;
        // First index whose cumulative weight exceeds `target`. Skipping
        // entries with cumulative == target means a zero-weight item (a
        // zero-width interval) can never be selected, even on an exact
        // boundary hit.
        self.cumulative
            .partition_point(|&c| c <= target)
            .min(self.cumulative.len() - 1)
    }
}
