//! Vendored stand-in for `rand` 0.8.
//!
//! Implements exactly the API surface this workspace uses — `Rng::gen`,
//! `Rng::gen_range`, `Rng::gen_bool`, `SeedableRng::{from_seed,
//! seed_from_u64}`, `rngs::StdRng`, and
//! `distributions::{Distribution, Standard, WeightedIndex}` — on top of a
//! xoshiro256++ core. The stream differs from the real `StdRng` (ChaCha12),
//! but every consumer seeds explicitly, so determinism is preserved
//! bit-for-bit across runs and platforms.

#![forbid(unsafe_code)]

pub mod distributions;
pub mod rngs;

use distributions::{Distribution, Standard};

/// Low-level source of randomness.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// User-facing convenience methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Sample a value of type `T` from the [`Standard`] distribution.
    fn gen<T>(&mut self) -> T
    where
        Standard: Distribution<T>,
    {
        Standard.sample(self)
    }

    /// Sample uniformly from `range` (`a..b` or `a..=b`).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Bernoulli trial with success probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p out of range: {p}");
        self.gen::<f64>() < p
    }

    /// Sample from an explicit distribution.
    fn sample<T, D: Distribution<T>>(&mut self, distr: D) -> T {
        distr.sample(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// A random number generator that can be seeded deterministically.
pub trait SeedableRng: Sized {
    /// Raw seed type (a byte array).
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Construct from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Construct from a `u64`, expanding it with SplitMix64 exactly like
    /// `rand 0.8` does, so small seeds still produce well-mixed state.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
        Self::from_seed(seed)
    }
}

/// Ranges that [`Rng::gen_range`] accepts.
pub trait SampleRange<T> {
    /// Draw one uniform sample from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                let draw = widening_mod(rng, span);
                (self.start as u128).wrapping_add(draw) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range: empty range");
                let span = (end as u128) - (start as u128) + 1;
                let draw = widening_mod(rng, span);
                (start as u128).wrapping_add(draw) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize);

macro_rules! impl_signed_range {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let draw = widening_mod(rng, span);
                (self.start as i128 + draw as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range: empty range");
                let span = (end as i128 - start as i128 + 1) as u128;
                let draw = widening_mod(rng, span);
                (start as i128 + draw as i128) as $t
            }
        }
        #[allow(unused)]
        const _: $u = 0;
    )*};
}

impl_signed_range!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        let unit: f64 = Standard.sample(rng);
        self.start + unit * (self.end - self.start)
    }
}

impl SampleRange<f64> for core::ops::RangeInclusive<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "gen_range: empty range");
        let unit: f64 = Standard.sample(rng);
        start + unit * (end - start)
    }
}

impl SampleRange<f32> for core::ops::Range<f32> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "gen_range: empty range");
        let unit: f64 = Standard.sample(rng);
        self.start + (unit as f32) * (self.end - self.start)
    }
}

/// Uniform draw in `[0, span)` via 128-bit widening multiply (unbiased for
/// the span sizes used here; identical on every platform).
fn widening_mod<R: RngCore + ?Sized>(rng: &mut R, span: u128) -> u128 {
    debug_assert!(span > 0);
    if span <= u64::MAX as u128 {
        ((rng.next_u64() as u128) * span) >> 64
    } else {
        // Only reachable for ranges wider than u64; fold two words.
        let x = ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128;
        x % span
    }
}
