//! Vendored stand-in for `criterion`.
//!
//! Provides the API the `fi-bench` benches use — `Criterion`,
//! `benchmark_group`, `bench_function`, `bench_with_input`, `BenchmarkId`,
//! `black_box`, `criterion_group!`, `criterion_main!` — with a much lighter
//! measurement loop: each benchmark is timed over a fixed wall-clock budget
//! and reported as mean ns/iter on stdout. No statistics, plots, or
//! baselines.
//!
//! Under `cargo test` (which builds `harness = false` bench targets and
//! runs them with `--test`), every benchmark body executes exactly once so
//! the bench code stays covered without burning CI time.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How a [`Criterion`] run executes benchmark bodies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mode {
    /// `cargo bench`: time each body over a small budget and report.
    Measure,
    /// `cargo test` (`--test` flag): run each body once, report nothing.
    Smoke,
}

/// Entry point handed to every benchmark function.
#[derive(Debug)]
pub struct Criterion {
    mode: Mode,
}

impl Default for Criterion {
    fn default() -> Self {
        // Cargo invokes `harness = false` bench targets with `--test` when
        // running `cargo test`; anything else is a real bench run.
        let smoke = std::env::args().any(|a| a == "--test");
        Criterion {
            mode: if smoke { Mode::Smoke } else { Mode::Measure },
        }
    }
}

impl Criterion {
    /// Time `f` under `id`.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(self.mode, id, &mut f);
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
        }
    }
}

/// A named benchmark group (`group.finish()` when done).
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the shim's budget is fixed.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility; the shim's budget is fixed.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Time `f` under `group/id`.
    pub fn bench_function<I, F>(&mut self, id: I, mut f: F) -> &mut Self
    where
        I: IntoBenchmarkId,
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into_benchmark_id());
        run_one(self.criterion.mode, &label, &mut f);
        self
    }

    /// Time `f(bencher, input)` under `group/id`.
    pub fn bench_with_input<I, F, T>(&mut self, id: I, input: &T, mut f: F) -> &mut Self
    where
        I: IntoBenchmarkId,
        F: FnMut(&mut Bencher, &T),
        T: ?Sized,
    {
        let label = format!("{}/{}", self.name, id.into_benchmark_id());
        run_one(self.criterion.mode, &label, &mut |b: &mut Bencher| {
            f(b, input)
        });
        self
    }

    /// End the group (drop would do; kept for API parity).
    pub fn finish(self) {}
}

/// Identifier for one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `BenchmarkId::new("shannon", 1000)` renders as `shannon/1000`.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Identifier carrying only a parameter value.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

/// Conversion accepted by `bench_function`-style methods.
pub trait IntoBenchmarkId {
    /// Render as the display label.
    fn into_benchmark_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> String {
        self.label
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> String {
        self
    }
}

/// Times closures handed to it by a benchmark body.
#[derive(Debug)]
pub struct Bencher {
    mode: Mode,
    /// (iterations, total elapsed) accumulated by `iter`.
    measurement: Option<(u64, Duration)>,
}

impl Bencher {
    /// Run `routine` repeatedly and record mean time per iteration.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        match self.mode {
            Mode::Smoke => {
                black_box(routine());
                self.measurement = Some((1, Duration::ZERO));
            }
            Mode::Measure => {
                // Warm up once, then run until the budget elapses.
                black_box(routine());
                let budget = Duration::from_millis(200);
                let start = Instant::now();
                let mut iters = 0u64;
                while start.elapsed() < budget {
                    black_box(routine());
                    iters += 1;
                }
                self.measurement = Some((iters.max(1), start.elapsed()));
            }
        }
    }
}

fn run_one<F>(mode: Mode, label: &str, f: &mut F)
where
    F: FnMut(&mut Bencher),
{
    let mut bencher = Bencher {
        mode,
        measurement: None,
    };
    f(&mut bencher);
    if mode == Mode::Measure {
        match bencher.measurement {
            Some((iters, elapsed)) => {
                let ns = elapsed.as_nanos() as f64 / iters as f64;
                println!("bench: {label:<50} {ns:>14.1} ns/iter ({iters} iters)");
            }
            None => println!("bench: {label:<50} (no measurement)"),
        }
    }
}

/// Collect benchmark functions into one runner, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emit `main` for a bench target (`harness = false`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
