//! The deterministic case runner behind `proptest!`.

use crate::strategy::Strategy;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};

/// The RNG all strategies draw from.
pub type TestRng = StdRng;

/// Runner configuration. Only `cases` is honoured by the shim.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of accepted (non-rejected) cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running exactly `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    /// 64 cases — smaller than real proptest's 256 to keep CI fast; suites
    /// can override per-block with `#![proptest_config(...)]`.
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Why a case did not pass. `Reject` discards the case (`prop_assume!`);
/// `Fail` fails the whole test.
#[derive(Debug)]
pub enum TestCaseError {
    /// Case discarded; carries the failed assumption.
    Reject(String),
    /// Case failed; carries the failure message.
    Fail(String),
}

/// What a single case returns: `Ok` to count it, `Err` to discard or fail.
pub type TestCaseResult = Result<(), TestCaseError>;

/// FNV-1a, used to turn a test's module path + name into a stable seed.
fn fnv1a(name: &str) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for byte in name.bytes() {
        hash ^= byte as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

/// Run `config.cases` accepted cases of `test` over values drawn from
/// `strategy`. Each case's RNG is seeded from the test name and case index,
/// so a failure report (`name`, case `k`) is sufficient to reproduce it.
///
/// # Panics
///
/// Propagates the first failing case's panic (annotated with the case
/// index and seed), and panics if `prop_assume!` rejects too many cases.
pub fn run<S, F>(config: &ProptestConfig, name: &str, strategy: &S, test: F)
where
    S: Strategy,
    F: Fn(S::Value) -> TestCaseResult,
{
    let base = fnv1a(name);
    let rejection_budget = config.cases as u64 * 16 + 1024;
    let mut accepted = 0u32;
    let mut rejections = 0u64;
    let mut case = 0u64;
    while accepted < config.cases {
        let seed = base ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        // Generation runs inside catch_unwind too, so a panicking strategy
        // (e.g. an exhausted prop_filter) still gets the case/seed report.
        match catch_unwind(AssertUnwindSafe(|| {
            let mut rng = StdRng::seed_from_u64(seed);
            test(strategy.generate(&mut rng))
        })) {
            Ok(Ok(())) => accepted += 1,
            Ok(Err(TestCaseError::Reject(cond))) => {
                rejections += 1;
                assert!(
                    rejections <= rejection_budget,
                    "proptest '{name}': prop_assume!({cond}) rejected {rejections} cases"
                );
            }
            Ok(Err(TestCaseError::Fail(msg))) => {
                panic!("proptest '{name}' failed at case {case} (seed {seed:#018x}): {msg}");
            }
            Err(payload) => {
                eprintln!(
                    "proptest '{name}' failed at case {case} (seed {seed:#018x}); \
                     the run is deterministic, re-running reproduces it"
                );
                resume_unwind(payload);
            }
        }
        case += 1;
    }
}
