//! The [`Strategy`] trait and combinators.

use crate::test_runner::TestRng;
use rand::Rng;

/// Maximum redraws a [`Filter`] performs before giving up.
const FILTER_RETRIES: usize = 1_000;

/// A recipe for generating values of `Self::Value`.
///
/// Unlike real proptest there is no value tree and no shrinking: a strategy
/// is just a deterministic function of the RNG stream.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draw one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Keep only values satisfying `pred`, redrawing otherwise.
    fn prop_filter<F>(self, reason: &'static str, pred: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            reason,
            pred,
        }
    }

    /// Generate a value, then build a second strategy from it.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// Box a strategy behind `dyn Strategy`, unifying arm types for
/// [`prop_oneof!`](crate::prop_oneof).
pub fn boxed<S>(strategy: S) -> Box<dyn Strategy<Value = S::Value>>
where
    S: Strategy + 'static,
{
    Box::new(strategy)
}

/// Always yields a clone of one value.
#[derive(Debug, Clone, Copy)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    reason: &'static str,
    pred: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..FILTER_RETRIES {
            let candidate = self.inner.generate(rng);
            if (self.pred)(&candidate) {
                return candidate;
            }
        }
        panic!(
            "prop_filter exhausted {FILTER_RETRIES} redraws: {}",
            self.reason
        );
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, F, T> Strategy for FlatMap<S, F>
where
    S: Strategy,
    T: Strategy,
    F: Fn(S::Value) -> T,
{
    type Value = T::Value;
    fn generate(&self, rng: &mut TestRng) -> T::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// Uniform choice over same-typed strategies; built by
/// [`prop_oneof!`](crate::prop_oneof).
pub struct Union<T> {
    arms: Vec<Box<dyn Strategy<Value = T>>>,
}

impl<T> Union<T> {
    /// Build from the boxed arms.
    ///
    /// # Panics
    ///
    /// Panics if `arms` is empty.
    pub fn new(arms: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let idx = rng.gen_range(0..self.arms.len());
        self.arms[idx].generate(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
impl_tuple_strategy!(A, B, C, D, E, F, G);
impl_tuple_strategy!(A, B, C, D, E, F, G, H);
