//! `any::<T>()` — full-domain strategies for primitives and byte arrays.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::distributions::{Distribution, Standard};

/// Types with a canonical full-domain strategy.
pub trait Arbitrary: Sized {
    /// Draw an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_via_standard {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                Standard.sample(rng)
            }
        }
    )*};
}

impl_arbitrary_via_standard!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, isize, bool, f64);

// The vendored rand has no `Distribution<i128>`; compose one from two u64s.
impl Arbitrary for i128 {
    fn arbitrary(rng: &mut TestRng) -> i128 {
        let hi = u128::from(u64::arbitrary(rng));
        let lo = u128::from(u64::arbitrary(rng));
        ((hi << 64) | lo) as i128
    }
}

impl<T: Arbitrary, const N: usize> Arbitrary for [T; N] {
    fn arbitrary(rng: &mut TestRng) -> [T; N] {
        core::array::from_fn(|_| T::arbitrary(rng))
    }
}

/// Strategy returned by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(core::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The canonical strategy for `T` (`any::<u8>()`, `any::<[u8; 16]>()`, …).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(core::marker::PhantomData)
}
