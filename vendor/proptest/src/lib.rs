//! Vendored stand-in for `proptest`.
//!
//! Implements the subset of the proptest API this workspace's property
//! suites use: the `proptest!` macro (with optional
//! `#![proptest_config(...)]`), range / `any::<T>()` / `Just` / tuple /
//! `collection::vec` strategies, `prop_map` / `prop_filter` combinators,
//! `prop_oneof!`, `prop_assert*!`, and `prop_assume!`.
//!
//! Differences from the real crate, by design:
//!
//! - **No shrinking.** A failing case reports the test name, case index and
//!   derived seed; re-running is fully deterministic, so the failing input
//!   is reproducible without shrinking machinery.
//! - **Deterministic seeding.** Each test's RNG stream is derived from the
//!   test function's name (FNV-1a) and the case index — there is no
//!   entropy source, so CI runs are reproducible bit-for-bit.

#![forbid(unsafe_code)]

pub mod arbitrary;
pub mod collection;
pub mod strategy;
pub mod test_runner;

/// Strategies over `bool` (`proptest::bool::ANY`).
pub mod bool {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;

    /// Strategy yielding a fair coin flip.
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    /// The canonical `bool` strategy.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.gen()
        }
    }
}

/// Everything the property suites import with `use proptest::prelude::*`.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestCaseResult};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// `proptest! { ... }` — define deterministic property tests.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            cfg = $crate::test_runner::ProptestConfig::default();
            $($rest)*
        }
    };
}

/// Internal expansion of [`proptest!`]; not part of the public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (cfg = $cfg:expr;
     $($(#[$meta:meta])*
       fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block)*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config = $cfg;
                let __strategy = ($($strat,)+);
                $crate::test_runner::run(
                    &__config,
                    concat!(module_path!(), "::", stringify!($name)),
                    &__strategy,
                    |__case| {
                        let ($($arg,)+) = __case;
                        $body
                        Ok(())
                    },
                );
            }
        )*
    };
}

/// Assert inside a property; failure fails the current case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Equality assertion inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => { assert_eq!($left, $right) };
    ($left:expr, $right:expr, $($fmt:tt)+) => { assert_eq!($left, $right, $($fmt)+) };
}

/// Inequality assertion inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => { assert_ne!($left, $right) };
    ($left:expr, $right:expr, $($fmt:tt)+) => { assert_ne!($left, $right, $($fmt)+) };
}

/// Discard the current case (it does not count toward the case budget).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return Err($crate::test_runner::TestCaseError::Reject(
                stringify!($cond).to_string(),
            ));
        }
    };
}

/// Uniform choice between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![$($crate::strategy::boxed($strat)),+])
    };
}
