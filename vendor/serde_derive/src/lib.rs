//! Vendored stand-in for `serde_derive`.
//!
//! The workspace only uses `Serialize`/`Deserialize` in derive position as
//! wire-format markers; nothing serializes at runtime yet. These derives
//! accept the same input (including `#[serde(...)]` attributes) and expand
//! to nothing, so the annotated types compile unchanged without pulling
//! `syn`/`quote` from the network.

use proc_macro::TokenStream;

/// No-op `#[derive(Serialize)]`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `#[derive(Deserialize)]`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
